#include "io/snapshot_io.h"

#include "io/snapshot_wire.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/solver.h"
#include "gen/city_generators.h"
#include "io/mmap_snapshot.h"
#include "market/contract_book.h"
#include "test_util.h"

namespace mroam::io {
namespace {

using common::StatusCode;

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mroam_snapshot_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }

  /// A small generated city: nontrivial doubles (times, jittered
  /// coordinates) so bit-exactness is actually exercised.
  IndexSnapshot MakeCity() {
    IndexSnapshot made;
    gen::NycLikeConfig config;
    config.num_billboards = 80;
    config.num_trajectories = 1500;
    common::Rng rng(7);
    made.dataset = gen::GenerateNycLike(config, &rng);
    made.index = influence::InfluenceIndex::Build(made.dataset, 150.0);
    return made;
  }

  /// A v2 (current-format) snapshot of the city.
  std::string SavedCityPath() {
    IndexSnapshot city = MakeCity();
    std::string path = PathFor("city.snap");
    EXPECT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
    return path;
  }

  /// A v1 (legacy-format) snapshot — the framing the v1 tamper tests
  /// below pick apart with FindSection.
  std::string SavedCityPathV1() {
    IndexSnapshot city = MakeCity();
    std::string path = PathFor("city_v1.snap");
    EXPECT_TRUE(SaveIndexSnapshotV1(path, city.dataset, city.index).ok());
    return path;
  }

  /// A nontrivial open book: two live contracts and a minted-ahead
  /// ticket counter, as a drained server would export.
  static market::ContractBook MakeBook() {
    market::ContractBook book;
    book.day = 5;
    book.next_ticket = 9;
    market::ContractBookEntry a;
    a.terms = testing::Adv(0, 120, 35.5);
    a.ticket = 3;
    a.expires_on = 8;
    a.billboards = {1, 4, 17};
    market::ContractBookEntry b;
    b.terms = testing::Adv(7, 60, 12.25);
    b.ticket = 8;
    b.expires_on = 6;
    b.billboards = {2};
    book.entries = {a, b};
    return book;
  }

  static void ExpectBooksEqual(const market::ContractBook& got,
                               const market::ContractBook& want) {
    EXPECT_EQ(got.day, want.day);
    EXPECT_EQ(got.next_ticket, want.next_ticket);
    ASSERT_EQ(got.entries.size(), want.entries.size());
    for (size_t i = 0; i < want.entries.size(); ++i) {
      const market::ContractBookEntry& g = got.entries[i];
      const market::ContractBookEntry& w = want.entries[i];
      EXPECT_EQ(g.terms.id, w.terms.id);
      EXPECT_EQ(g.terms.demand, w.terms.demand);
      EXPECT_EQ(std::bit_cast<uint64_t>(g.terms.payment),
                std::bit_cast<uint64_t>(w.terms.payment));
      EXPECT_EQ(g.ticket, w.ticket);
      EXPECT_EQ(g.expires_on, w.expires_on);
      EXPECT_EQ(g.billboards, w.billboards);
    }
  }

  static std::string ReadBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void WriteBytes(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  static uint32_t ReadU32(const std::string& data, size_t offset) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data[offset + i]))
           << (8 * i);
    }
    return v;
  }

  static uint64_t ReadU64(const std::string& data, size_t offset) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[offset + i]))
           << (8 * i);
    }
    return v;
  }

  static void StoreU32(std::string* data, size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      (*data)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
    }
  }

  struct SectionSpan {
    size_t payload_offset = 0;
    size_t payload_length = 0;
    size_t crc_offset = 0;
  };

  /// Walks the v1 section framing to locate one section's payload — the
  /// format knowledge the tamper tests rely on lives in the public
  /// constants, not in copied magic numbers.
  static SectionSpan FindSection(const std::string& data,
                                 SnapshotSection wanted) {
    size_t offset = kSnapshotFileHeaderBytes;
    while (offset + kSnapshotSectionHeaderBytes <= data.size()) {
      uint32_t id = ReadU32(data, offset);
      uint64_t length = ReadU64(data, offset + 4);
      SectionSpan span;
      span.payload_offset = offset + kSnapshotSectionHeaderBytes;
      span.payload_length = static_cast<size_t>(length);
      span.crc_offset = span.payload_offset + span.payload_length;
      if (id == static_cast<uint32_t>(wanted)) return span;
      offset = span.crc_offset + 4;
    }
    ADD_FAILURE() << "section " << static_cast<uint32_t>(wanted)
                  << " not found";
    return {};
  }

  struct SectionSpanV2 : SectionSpan {
    size_t header_offset = 0;
    size_t pad = 0;
  };

  /// The v2 equivalent: 16-byte headers whose pad field floats the
  /// payload out to the next 64-byte file offset.
  static SectionSpanV2 FindSectionV2(const std::string& data,
                                     SnapshotSection wanted) {
    size_t offset = kSnapshotFileHeaderBytes;
    while (offset + kSnapshotSectionHeaderBytesV2 <= data.size()) {
      uint32_t id = ReadU32(data, offset);
      uint32_t pad = ReadU32(data, offset + 4);
      uint64_t length = ReadU64(data, offset + 8);
      SectionSpanV2 span;
      span.header_offset = offset;
      span.pad = pad;
      span.payload_offset = offset + kSnapshotSectionHeaderBytesV2 + pad;
      span.payload_length = static_cast<size_t>(length);
      span.crc_offset = span.payload_offset + span.payload_length;
      if (id == static_cast<uint32_t>(wanted)) return span;
      if (id == static_cast<uint32_t>(SnapshotSection::kEnd)) break;
      offset = span.crc_offset + 4;
    }
    ADD_FAILURE() << "v2 section " << static_cast<uint32_t>(wanted)
                  << " not found";
    return {};
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotIoTest, RoundTripIsBitExact) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("roundtrip.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());

  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->dataset.name, city.dataset.name);
  ASSERT_EQ(loaded->dataset.billboards.size(),
            city.dataset.billboards.size());
  for (size_t i = 0; i < city.dataset.billboards.size(); ++i) {
    const model::Billboard& a = city.dataset.billboards[i];
    const model::Billboard& b = loaded->dataset.billboards[i];
    EXPECT_EQ(b.id, a.id);
    // Bit-exact, not approximately-equal: the format stores IEEE-754
    // bit patterns.
    EXPECT_EQ(std::bit_cast<uint64_t>(b.location.x),
              std::bit_cast<uint64_t>(a.location.x));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.location.y),
              std::bit_cast<uint64_t>(a.location.y));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.cost),
              std::bit_cast<uint64_t>(a.cost));
  }
  ASSERT_EQ(loaded->dataset.trajectories.size(),
            city.dataset.trajectories.size());
  for (size_t t = 0; t < city.dataset.trajectories.size(); ++t) {
    const model::Trajectory& a = city.dataset.trajectories[t];
    const model::Trajectory& b = loaded->dataset.trajectories[t];
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(std::bit_cast<uint64_t>(b.start_time_seconds),
              std::bit_cast<uint64_t>(a.start_time_seconds));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.travel_time_seconds),
              std::bit_cast<uint64_t>(a.travel_time_seconds));
    ASSERT_EQ(b.points.size(), a.points.size());
    for (size_t k = 0; k < a.points.size(); ++k) {
      EXPECT_EQ(std::bit_cast<uint64_t>(b.points[k].x),
                std::bit_cast<uint64_t>(a.points[k].x));
      EXPECT_EQ(std::bit_cast<uint64_t>(b.points[k].y),
                std::bit_cast<uint64_t>(a.points[k].y));
    }
  }

  EXPECT_EQ(loaded->index.num_billboards(), city.index.num_billboards());
  EXPECT_EQ(loaded->index.num_trajectories(),
            city.index.num_trajectories());
  EXPECT_DOUBLE_EQ(loaded->index.lambda(), city.index.lambda());
  EXPECT_EQ(loaded->index.TotalSupply(), city.index.TotalSupply());
  EXPECT_EQ(loaded->index.covered(), city.index.covered());
  EXPECT_EQ(loaded->index.covering(), city.index.covering());
}

TEST_F(SnapshotIoTest, LoadedIndexReproducesSolverOutputExactly) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("solver.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<market::Advertiser> advertisers;
  for (int i = 0; i < 12; ++i) {
    advertisers.push_back(
        testing::Adv(i, 40 + 17 * i, 5.0 + 1.5 * static_cast<double>(i)));
  }
  core::SolverConfig config;
  config.method = core::Method::kBls;
  config.local_search.restarts = 2;
  config.seed = 99;

  core::SolveResult original = Solve(city.index, advertisers, config);
  core::SolveResult replayed = Solve(loaded->index, advertisers, config);
  EXPECT_EQ(replayed.sets, original.sets);
  EXPECT_DOUBLE_EQ(replayed.breakdown.total, original.breakdown.total);
}

TEST_F(SnapshotIoTest, SaveRefusesEmptyDataset) {
  model::Dataset empty;
  influence::InfluenceIndex index;
  common::Status status =
      SaveIndexSnapshot(PathFor("empty.snap"), empty, index);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotIoTest, SaveRefusesMismatchedIndex) {
  IndexSnapshot city = MakeCity();
  model::Dataset other = testing::DatasetFromIncidence({{0}, {1}}, 2);
  common::Status status =
      SaveIndexSnapshot(PathFor("mismatch.snap"), other, city.index);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotIoTest, SaveCreatesParentDirectories) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("deep/nested/dirs/city.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
}

TEST_F(SnapshotIoTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadIndexSnapshot(PathFor("nope.snap"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotIoTest, LoadRejectsForeignFile) {
  std::string path = PathFor("foreign.snap");
  WriteBytes(path, "id,x,y\n0,1,2\n this is clearly a CSV not a snapshot");
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("not a mroam index snapshot"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, LoadRejectsUnsupportedVersion) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  // The version lives right after the magic, uncovered by any CRC.
  StoreU32(&data, sizeof(kSnapshotMagic), kSnapshotVersion + 1);
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("unsupported snapshot version"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, LoadRejectsTruncationAnywhere) {
  std::string path = SavedCityPath();
  const std::string data = ReadBytes(path);
  // Cut the file at a spread of prefix lengths: inside the file header,
  // inside a section header, mid-payload, and just before the end
  // marker. Every cut must surface as a typed error, never a crash.
  const size_t cuts[] = {0,
                         4,
                         kSnapshotFileHeaderBytes - 1,
                         kSnapshotFileHeaderBytes + 5,
                         data.size() / 3,
                         data.size() / 2,
                         data.size() - 5,
                         data.size() - 1};
  for (size_t cut : cuts) {
    WriteBytes(path, data.substr(0, cut));
    auto loaded = LoadIndexSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " loaded fine";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << loaded.status().ToString();
  }
}

TEST_F(SnapshotIoTest, LoadRejectsFlippedPayloadByte) {
  std::string path = SavedCityPathV1();
  std::string data = ReadBytes(path);
  SectionSpan span = FindSection(data, SnapshotSection::kTrajectories);
  ASSERT_GT(span.payload_length, 10u);
  data[span.payload_offset + span.payload_length / 2] ^= 0x40;
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("CRC mismatch"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, LoadRejectsMismatchedCoveringSection) {
  std::string path = SavedCityPathV1();
  std::string data = ReadBytes(path);
  // Forge the reverse index: truncate the first non-empty covering list
  // by one entry (keeping the encoding well-formed) and re-sign the CRC.
  // The framing is now pristine, so only the cross-check against the
  // forward lists can catch it.
  SectionSpan span = FindSection(data, SnapshotSection::kCovering);
  size_t offset = span.payload_offset + 4;  // skip the list count
  const size_t payload_end = span.payload_offset + span.payload_length;
  bool forged = false;
  while (offset + 4 <= payload_end) {
    uint32_t len = ReadU32(data, offset);
    if (len > 0) {
      StoreU32(&data, offset, len - 1);
      data.erase(offset + 4, 4);  // drop the list's first id
      forged = true;
      break;
    }
    offset += 4;
  }
  ASSERT_TRUE(forged);
  // Re-frame: the payload shrank by 4 bytes and needs a fresh CRC.
  size_t length_offset = span.payload_offset - 8;
  uint64_t new_length = span.payload_length - 4;
  for (int i = 0; i < 8; ++i) {
    data[length_offset + i] =
        static_cast<char>((new_length >> (8 * i)) & 0xFFu);
  }
  std::string_view payload(data.data() + span.payload_offset,
                           static_cast<size_t>(new_length));
  StoreU32(&data, span.payload_offset + static_cast<size_t>(new_length),
           common::Crc32(payload));
  WriteBytes(path, data);

  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("covering section"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, SnapshotLoadFaultPointFailsTyped) {
  std::string path = SavedCityPath();
  // The armed io.snapshot_load point turns a perfectly good snapshot
  // into a typed load failure — the hook mroam_serve's distinct exit
  // status (3) and the chaos suite lean on.
  auto& injector = common::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=1;io.snapshot_load=1.0").ok());
  auto faulted = LoadIndexSnapshot(path);
  injector.Disarm();
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);
  EXPECT_NE(faulted.status().message().find("fault injection"),
            std::string::npos)
      << faulted.status().ToString();
  // Disarmed again, the same file loads fine.
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
}

// --- format v2: alignment, book persistence, tamper rejection ------------

TEST_F(SnapshotIoTest, V1FileStillLoadsThroughTheSameEntryPoint) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("compat_v1.snap");
  ASSERT_TRUE(SaveIndexSnapshotV1(path, city.dataset, city.index).ok());
  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->index.covered(), city.index.covered());
  EXPECT_EQ(loaded->index.covering(), city.index.covering());
  EXPECT_TRUE(loaded->book.empty());  // v1 carries no book
}

TEST_F(SnapshotIoTest, V2RoundTripRestoresContractBook) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("book.snap");
  market::ContractBook book = MakeBook();
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index, book).ok());
  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBooksEqual(loaded->book, book);
  // The restored index still matches, book or no book.
  EXPECT_EQ(loaded->index.covered(), city.index.covered());
}

TEST_F(SnapshotIoTest, V2PayloadsAre64ByteAligned) {
  std::string path = SavedCityPath();
  const std::string data = ReadBytes(path);
  ASSERT_EQ(ReadU32(data, sizeof(kSnapshotMagic)), kSnapshotVersionV2);
  for (SnapshotSection section :
       {SnapshotSection::kMeta, SnapshotSection::kBillboards,
        SnapshotSection::kTrajectories, SnapshotSection::kCompressedIncidence,
        SnapshotSection::kCompressedCovering, SnapshotSection::kContractBook}) {
    SectionSpanV2 span = FindSectionV2(data, section);
    EXPECT_EQ(span.payload_offset % wire::kSectionAlignmentV2, 0u)
        << "section " << static_cast<uint32_t>(section);
  }
}

TEST_F(SnapshotIoTest, V2RejectsFlippedCompressedPayloadByte) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  SectionSpanV2 span =
      FindSectionV2(data, SnapshotSection::kCompressedIncidence);
  ASSERT_GT(span.payload_length, 10u);
  data[span.payload_offset + span.payload_length / 2] ^= 0x40;
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("CRC mismatch"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, V2RejectsNonzeroPadByte) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  SectionSpanV2 span = FindSectionV2(data, SnapshotSection::kMeta);
  ASSERT_GT(span.pad, 0u);  // the first header always needs padding
  // Pad bytes sit between header and payload and are covered by no CRC;
  // the walker itself must insist they are zero.
  data[span.payload_offset - 1] = 0x5A;
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotIoTest, V2RejectsResignedCoveringSubstitution) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  // Forge the covering blob with a pristine CRC: the framing layer now
  // passes, and only the loader's re-encode byte comparison against the
  // forward lists can catch the substitution.
  SectionSpanV2 span =
      FindSectionV2(data, SnapshotSection::kCompressedCovering);
  ASSERT_GT(span.payload_length, 50u);
  data[span.payload_offset + span.payload_length - 1] ^= 0x01;
  std::string_view payload(data.data() + span.payload_offset,
                           span.payload_length);
  StoreU32(&data, span.crc_offset, common::Crc32(payload));
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
      << loaded.status().ToString();
}

// --- atomic save ---------------------------------------------------------

TEST_F(SnapshotIoTest, FaultedSaveLeavesExistingSnapshotIntact) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("atomic.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
  const std::string before = ReadBytes(path);

  auto& injector = common::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=1;io.snapshot_write=1.0").ok());
  common::Status faulted =
      SaveIndexSnapshot(path, city.dataset, city.index, MakeBook());
  injector.Disarm();
  EXPECT_EQ(faulted.code(), StatusCode::kIoError);
  EXPECT_NE(faulted.message().find("fault injection"), std::string::npos);

  // The crash-simulated write went to the temp file only: the published
  // snapshot is byte-identical and still loads.
  EXPECT_EQ(ReadBytes(path), before);
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
  // The stray temp file (what a real crash would leave) is present.
  EXPECT_TRUE(std::filesystem::exists(
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()))));
}

TEST_F(SnapshotIoTest, FaultedSaveToFreshPathPublishesNothing) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("never_published.snap");
  auto& injector = common::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=1;io.snapshot_write=1.0").ok());
  common::Status faulted =
      SaveIndexSnapshot(path, city.dataset, city.index);
  injector.Disarm();
  EXPECT_EQ(faulted.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
}

// --- zero-copy mapping ---------------------------------------------------

TEST_F(SnapshotIoTest, MappedSnapshotServesTheSameIndexZeroCopy) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("mapped.snap");
  market::ContractBook book = MakeBook();
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index, book).ok());

  auto mapped = MappedSnapshot::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->file_bytes(), std::filesystem::file_size(path));
  ExpectBooksEqual(mapped->book(), book);

  const influence::InfluenceIndex& index = mapped->index();
  EXPECT_FALSE(index.has_plain());
  EXPECT_EQ(index.num_billboards(), city.index.num_billboards());
  EXPECT_EQ(index.num_trajectories(), city.index.num_trajectories());
  EXPECT_EQ(index.TotalSupply(), city.index.TotalSupply());
  EXPECT_DOUBLE_EQ(index.lambda(), city.index.lambda());
  for (int32_t o = 0; o < index.num_billboards(); ++o) {
    std::vector<model::TrajectoryId> walked;
    index.ForEachCovered(o, [&walked](model::TrajectoryId t) {
      walked.push_back(t);
    });
    ASSERT_EQ(walked, city.index.CoveredBy(o)) << "billboard " << o;
  }

  // A solver run over the mapped index is bit-identical to one over the
  // built index on the compressed backend (which a plain-free index
  // forces anyway).
  std::vector<market::Advertiser> advertisers;
  for (int i = 0; i < 8; ++i) {
    advertisers.push_back(
        testing::Adv(i, 30 + 11 * i, 4.0 + static_cast<double>(i)));
  }
  core::SolverConfig config;
  config.method = core::Method::kBls;
  config.local_search.restarts = 2;
  config.seed = 21;
  config.backend = influence::IndexBackend::kCompressed;
  core::SolveResult built = Solve(city.index, advertisers, config);
  core::SolveResult served = Solve(index, advertisers, config);
  EXPECT_EQ(served.sets, built.sets);
  EXPECT_EQ(served.influences, built.influences);
  EXPECT_DOUBLE_EQ(served.breakdown.total, built.breakdown.total);
}

TEST_F(SnapshotIoTest, MappedSnapshotSurvivesMoves) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("moved.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
  auto mapped = MappedSnapshot::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const int64_t supply = mapped->index().TotalSupply();

  MappedSnapshot moved = std::move(*mapped);
  MappedSnapshot assigned = std::move(moved);
  EXPECT_EQ(assigned.index().TotalSupply(), supply);
  EXPECT_EQ(assigned.index().InfluenceOf(0), city.index.InfluenceOf(0));
}

TEST_F(SnapshotIoTest, MapRejectsV1Snapshot) {
  std::string path = SavedCityPathV1();
  auto mapped = MappedSnapshot::Map(path);
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("--mmap"), std::string::npos)
      << mapped.status().ToString();
}

TEST_F(SnapshotIoTest, MapMissingFileIsNotFound) {
  auto mapped = MappedSnapshot::Map(PathFor("absent.snap"));
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotIoTest, MapRejectsTruncation) {
  std::string path = SavedCityPath();
  const std::string data = ReadBytes(path);
  for (size_t cut : {size_t{0}, size_t{6}, data.size() / 2,
                     data.size() - 3}) {
    WriteBytes(path, data.substr(0, cut));
    auto mapped = MappedSnapshot::Map(path);
    ASSERT_FALSE(mapped.ok()) << "cut at " << cut << " mapped fine";
  }
}

TEST_F(SnapshotIoTest, MapFaultPointFailsTyped) {
  std::string path = SavedCityPath();
  auto& injector = common::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=1;io.mmap_map=1.0").ok());
  auto faulted = MappedSnapshot::Map(path);
  injector.Disarm();
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);
  EXPECT_NE(faulted.status().message().find("fault injection"),
            std::string::npos);
  EXPECT_TRUE(MappedSnapshot::Map(path).ok());
}

using SnapshotIoDeathTest = SnapshotIoTest;

TEST_F(SnapshotIoDeathTest, ForgedIncidenceListAborts) {
  std::string path = SavedCityPathV1();
  std::string data = ReadBytes(path);
  // Corrupt an incidence id to an out-of-range value and re-sign the
  // CRC: the framing layer now passes, and the forgery must die on
  // FromIncidence's MROAM_CHECK preconditions instead of serving a
  // corrupt market.
  SectionSpan span = FindSection(data, SnapshotSection::kIncidence);
  size_t offset = span.payload_offset + 4;
  const size_t payload_end = span.payload_offset + span.payload_length;
  bool forged = false;
  while (offset + 4 <= payload_end) {
    uint32_t len = ReadU32(data, offset);
    offset += 4;
    if (len > 0) {
      StoreU32(&data, offset, 0x7FFFFFF0u);  // way out of range
      forged = true;
      break;
    }
  }
  ASSERT_TRUE(forged);
  std::string_view payload(data.data() + span.payload_offset,
                           span.payload_length);
  StoreU32(&data, span.crc_offset, common::Crc32(payload));
  WriteBytes(path, data);

  EXPECT_DEATH(LoadIndexSnapshot(path).ok(), "Check failed");
}

}  // namespace
}  // namespace mroam::io
