#include "core/regret.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;

TEST(RegretTest, ZeroInfluenceCostsFullPayment) {
  // gamma-independent: I(S)=0 makes the discount term vanish.
  for (double gamma : {0.0, 0.5, 1.0}) {
    RegretParams params{gamma};
    EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 0, params), 100.0);
  }
}

TEST(RegretTest, ExactSatisfactionIsZeroRegret) {
  RegretParams params{0.5};
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 10, params), 0.0);
}

TEST(RegretTest, UnsatisfiedBranchMatchesEquationOne) {
  // R = L (1 - gamma * I/I_i).
  RegretParams params{0.5};
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 6, params),
                   100.0 * (1.0 - 0.5 * 0.6));
}

TEST(RegretTest, ExcessiveBranchMatchesEquationOne) {
  // R = L (I - I_i) / I_i.
  RegretParams params{0.5};
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 15, params), 50.0);
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 20, params), 100.0);
  // Excessive regret can exceed the payment (more than 2x demand).
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 30, params), 200.0);
}

TEST(RegretTest, GammaZeroMeansAllOrNothing) {
  RegretParams params{0.0};
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 9, params), 100.0);
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 10, params), 0.0);
}

TEST(RegretTest, GammaOneMeansProportionalPayment) {
  RegretParams params{1.0};
  EXPECT_DOUBLE_EQ(Regret(Adv(0, 10, 100.0), 7, params), 30.0);
}

TEST(RegretTest, UnsatisfiedRegretDecreasesWithInfluence) {
  RegretParams params{0.75};
  double prev = Regret(Adv(0, 100, 50.0), 0, params);
  for (int64_t achieved = 1; achieved < 100; ++achieved) {
    double cur = Regret(Adv(0, 100, 50.0), achieved, params);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(RegretTest, ExcessiveRegretIncreasesWithInfluence) {
  RegretParams params{0.5};
  double prev = Regret(Adv(0, 100, 50.0), 100, params);
  for (int64_t achieved = 101; achieved < 200; ++achieved) {
    double cur = Regret(Adv(0, 100, 50.0), achieved, params);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(SatisfiedTest, BoundaryAtDemand) {
  EXPECT_FALSE(Satisfied(Adv(0, 10, 1.0), 9));
  EXPECT_TRUE(Satisfied(Adv(0, 10, 1.0), 10));
  EXPECT_TRUE(Satisfied(Adv(0, 10, 1.0), 11));
}

TEST(DualRevenueTest, MatchesEquationTwo) {
  // Unsatisfied: R' = L * I/I_i.
  EXPECT_DOUBLE_EQ(DualRevenue(Adv(0, 10, 100.0), 6), 60.0);
  // Satisfied: R' = L - L (I - I_i)/I_i.
  EXPECT_DOUBLE_EQ(DualRevenue(Adv(0, 10, 100.0), 10), 100.0);
  EXPECT_DOUBLE_EQ(DualRevenue(Adv(0, 10, 100.0), 15), 50.0);
  EXPECT_DOUBLE_EQ(DualRevenue(Adv(0, 10, 100.0), 0), 0.0);
}

TEST(DualRevenueTest, ZeroRegretIffFullDualPayment) {
  // "R' mimics R as R(S_i) = 0 iff R'(S_i) = L_i" (§6.3).
  RegretParams params{0.5};
  for (int64_t achieved : {0, 5, 9, 10, 11, 20, 30}) {
    market::Advertiser a = Adv(0, 10, 100.0);
    bool zero_regret = Regret(a, achieved, params) == 0.0;
    bool full_dual = DualRevenue(a, achieved) == a.payment;
    EXPECT_EQ(zero_regret, full_dual) << "achieved=" << achieved;
  }
}

TEST(DualRevenueTest, DualityIdentityInSatisfiedBranch) {
  // R + R' = L for any gamma once the demand is met.
  for (double gamma : {0.0, 0.3, 1.0}) {
    RegretParams params{gamma};
    for (int64_t achieved : {10, 13, 25}) {
      market::Advertiser a = Adv(0, 10, 100.0);
      EXPECT_DOUBLE_EQ(Regret(a, achieved, params) + DualRevenue(a, achieved),
                       100.0);
    }
  }
}

TEST(DualRevenueTest, DualityIdentityUnsatisfiedRequiresGammaOne) {
  market::Advertiser a = Adv(0, 10, 100.0);
  RegretParams gamma_one{1.0};
  EXPECT_DOUBLE_EQ(Regret(a, 4, gamma_one) + DualRevenue(a, 4), 100.0);
  RegretParams gamma_half{0.5};
  EXPECT_GT(Regret(a, 4, gamma_half) + DualRevenue(a, 4), 100.0);
}

// Parameterized sweep over the (gamma, demand) grid: checks the exact
// values of Equation 1 on both sides of the satisfaction boundary and the
// size of the jump discontinuity at I(S) = I_i, which is L * (1 - gamma).
class RegretGridTest
    : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(RegretGridTest, EquationOneOnBothSidesOfTheBoundary) {
  const double gamma = std::get<0>(GetParam());
  const int64_t demand = std::get<1>(GetParam());
  const double payment = 3.0 * static_cast<double>(demand);
  market::Advertiser a = Adv(0, demand, payment);
  RegretParams params{gamma};

  for (int64_t achieved = 0; achieved <= 2 * demand; ++achieved) {
    double expected;
    if (achieved < demand) {
      expected = payment * (1.0 - gamma * static_cast<double>(achieved) /
                                      static_cast<double>(demand));
    } else {
      expected = payment * static_cast<double>(achieved - demand) /
                 static_cast<double>(demand);
    }
    EXPECT_NEAR(Regret(a, achieved, params), expected, 1e-9)
        << "achieved=" << achieved;
  }
  // The jump at the boundary: R(I_i - 1) - R(I_i) -> L(1 - gamma) as
  // demands grow; exactly L(1-gamma) + L*gamma/I_i for integer influence.
  double jump = Regret(a, demand - 1, params) - Regret(a, demand, params);
  EXPECT_NEAR(jump,
              payment * (1.0 - gamma) +
                  payment * gamma / static_cast<double>(demand),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GammaDemandGrid, RegretGridTest,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values<int64_t>(1, 7, 100)));

TEST(RegretBreakdownTest, Percentages) {
  RegretBreakdown b;
  b.excessive = 30.0;
  b.unsatisfied_penalty = 70.0;
  b.total = 100.0;
  EXPECT_DOUBLE_EQ(b.ExcessivePercent(), 30.0);
  EXPECT_DOUBLE_EQ(b.UnsatisfiedPercent(), 70.0);

  RegretBreakdown zero;
  EXPECT_DOUBLE_EQ(zero.ExcessivePercent(), 0.0);
  EXPECT_DOUBLE_EQ(zero.UnsatisfiedPercent(), 0.0);
}

}  // namespace
}  // namespace mroam::core
