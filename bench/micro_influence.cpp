// google-benchmark micro-benchmarks of the influence engine: index build,
// coverage counter operations, move-delta evaluation primitives, and the
// cindex compressed-postings codec (decode throughput and bytes per
// posting, compressed vs plain — the numbers behind the
// check_cindex_regression tier-1 gate).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "influence/coverage_counter.h"
#include "micro_main.h"

namespace {

using namespace mroam;  // NOLINT: harness brevity

model::Dataset& SmallNyc() {
  static model::Dataset* dataset = [] {
    gen::NycLikeConfig config;
    config.num_billboards = 400;
    config.num_trajectories = 4000;
    common::Rng rng(1);
    return new model::Dataset(gen::GenerateNycLike(config, &rng));
  }();
  return *dataset;
}

influence::InfluenceIndex& SmallIndex() {
  static influence::InfluenceIndex* index = [] {
    return new influence::InfluenceIndex(
        influence::InfluenceIndex::Build(SmallNyc(), 100.0));
  }();
  return *index;
}

void BM_InfluenceIndexBuild(benchmark::State& state) {
  const model::Dataset& dataset = SmallNyc();
  for (auto _ : state) {
    influence::InfluenceIndex index =
        influence::InfluenceIndex::Build(dataset, 100.0);
    benchmark::DoNotOptimize(index.TotalSupply());
  }
}
BENCHMARK(BM_InfluenceIndexBuild)->Unit(benchmark::kMillisecond);

void BM_CoverageCounterAddRemove(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index);
  common::Rng rng(2);
  std::vector<model::BillboardId> order(index.num_billboards());
  for (int32_t i = 0; i < index.num_billboards(); ++i) order[i] = i;
  rng.Shuffle(order);
  size_t pos = 0;
  for (auto _ : state) {
    model::BillboardId o = order[pos];
    counter.Add(o);
    counter.Remove(o);
    pos = (pos + 1) % order.size();
    benchmark::DoNotOptimize(counter.influence());
  }
}
BENCHMARK(BM_CoverageCounterAddRemove);

void BM_MarginalGain(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index);
  for (int32_t o = 0; o < index.num_billboards(); o += 2) counter.Add(o);
  int32_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.MarginalGain(probe));
    probe += 2;
    if (probe >= index.num_billboards()) probe = 1;
  }
}
BENCHMARK(BM_MarginalGain);

void BM_MarginalGainAfterRemove(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index);
  for (int32_t o = 0; o < index.num_billboards(); o += 2) counter.Add(o);
  int32_t add = 1, rem = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.MarginalGainAfterRemove(add, rem));
    add += 2;
    rem += 2;
    if (add >= index.num_billboards()) add = 1;
    if (rem >= index.num_billboards()) rem = 0;
  }
}
BENCHMARK(BM_MarginalGainAfterRemove);

// --- cindex codec: decode throughput + density --------------------------
//
// Codec benches run against a dense incidence structure (same city,
// lambda = 1000m): the micro solver workload above keeps lambda small so
// solver iterations stay cheap, but its incidence lists are then ~10
// postings over a 4000-trajectory universe — all block/directory
// overhead, representative of nothing. Serving-scale indexes (60k+
// trajectories at paper lambda) put hundreds of postings in each list;
// the dense city reproduces that per-block occupancy at micro scale, and
// is the workload the >= 3x compression acceptance floor is anchored to.
influence::InfluenceIndex& DenseIndex() {
  static influence::InfluenceIndex* index = [] {
    return new influence::InfluenceIndex(
        influence::InfluenceIndex::Build(SmallNyc(), 1000.0));
  }();
  return *index;
}

// The two decode benchmarks walk every incidence list once per iteration,
// summing the ids so the walk cannot be elided. The compressed walk runs
// the branch-light block decoder (dense popcount blocks / sparse
// delta-varint); the plain walk reads the flat int32 vectors. The
// density counters are workload-deterministic (fixed generator seed, the
// codec has no randomness), so check_cindex_regression gates them
// exactly; the throughput counter is wall-clock and is gated only by a
// generous floor.

void BM_CompressedDecode(benchmark::State& state) {
  influence::InfluenceIndex& index = DenseIndex();
  const cindex::CompressedPostings& postings = index.compressed_covered();
  int64_t decoded = 0;
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint32_t o = 0; o < postings.num_lists(); ++o) {
      postings.ForEach(static_cast<int32_t>(o),
                       [&sum](int32_t v) { sum += v; });
    }
    benchmark::DoNotOptimize(sum);
    decoded += static_cast<int64_t>(postings.total_count());
  }
  const double total = static_cast<double>(postings.total_count());
  const double bytes = static_cast<double>(postings.bytes().size());
  state.counters["cindex.decode_mvalues_per_s"] = benchmark::Counter(
      static_cast<double>(decoded) / 1e6, benchmark::Counter::kIsRate);
  state.counters["cindex.bytes_per_posting"] =
      benchmark::Counter(bytes / total);
  // vs a flat int32 posting (4 bytes) — the acceptance floor is 3x.
  state.counters["cindex.compression_ratio"] =
      benchmark::Counter(4.0 * total / bytes);
}
BENCHMARK(BM_CompressedDecode)->Unit(benchmark::kMicrosecond);

void BM_PlainDecode(benchmark::State& state) {
  influence::InfluenceIndex& index = DenseIndex();
  int64_t decoded = 0;
  for (auto _ : state) {
    int64_t sum = 0;
    for (const auto& list : index.covered()) {
      for (model::TrajectoryId t : list) sum += t;
    }
    benchmark::DoNotOptimize(sum);
    decoded += index.TotalSupply();
  }
  state.counters["plain.decode_mvalues_per_s"] = benchmark::Counter(
      static_cast<double>(decoded) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlainDecode)->Unit(benchmark::kMicrosecond);

// Mirrors BM_MarginalGain on the compressed backend: same index, same
// probe sequence, popcount intersection kernel instead of per-id count
// lookups. Results are bit-identical (the equivalence tests enforce it);
// this measures the cost delta.
void BM_CompressedMarginalGain(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index, 1,
                                     influence::IndexBackend::kCompressed);
  for (int32_t o = 0; o < index.num_billboards(); o += 2) counter.Add(o);
  int32_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.MarginalGain(probe));
    probe += 2;
    if (probe >= index.num_billboards()) probe = 1;
  }
}
BENCHMARK(BM_CompressedMarginalGain);

void BM_InfluenceOfSet(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  std::vector<model::BillboardId> set;
  for (int32_t o = 0; o < index.num_billboards(); o += 7) set.push_back(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.InfluenceOfSet(set));
  }
}
BENCHMARK(BM_InfluenceOfSet)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mroam::bench::RunMicroBenchmarkMain(argc, argv, "micro_influence");
}
