// google-benchmark micro-benchmarks of the influence engine: index build,
// coverage counter operations, and move-delta evaluation primitives.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "influence/coverage_counter.h"
#include "micro_main.h"

namespace {

using namespace mroam;  // NOLINT: harness brevity

model::Dataset& SmallNyc() {
  static model::Dataset* dataset = [] {
    gen::NycLikeConfig config;
    config.num_billboards = 400;
    config.num_trajectories = 4000;
    common::Rng rng(1);
    return new model::Dataset(gen::GenerateNycLike(config, &rng));
  }();
  return *dataset;
}

influence::InfluenceIndex& SmallIndex() {
  static influence::InfluenceIndex* index = [] {
    return new influence::InfluenceIndex(
        influence::InfluenceIndex::Build(SmallNyc(), 100.0));
  }();
  return *index;
}

void BM_InfluenceIndexBuild(benchmark::State& state) {
  const model::Dataset& dataset = SmallNyc();
  for (auto _ : state) {
    influence::InfluenceIndex index =
        influence::InfluenceIndex::Build(dataset, 100.0);
    benchmark::DoNotOptimize(index.TotalSupply());
  }
}
BENCHMARK(BM_InfluenceIndexBuild)->Unit(benchmark::kMillisecond);

void BM_CoverageCounterAddRemove(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index);
  common::Rng rng(2);
  std::vector<model::BillboardId> order(index.num_billboards());
  for (int32_t i = 0; i < index.num_billboards(); ++i) order[i] = i;
  rng.Shuffle(order);
  size_t pos = 0;
  for (auto _ : state) {
    model::BillboardId o = order[pos];
    counter.Add(o);
    counter.Remove(o);
    pos = (pos + 1) % order.size();
    benchmark::DoNotOptimize(counter.influence());
  }
}
BENCHMARK(BM_CoverageCounterAddRemove);

void BM_MarginalGain(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index);
  for (int32_t o = 0; o < index.num_billboards(); o += 2) counter.Add(o);
  int32_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.MarginalGain(probe));
    probe += 2;
    if (probe >= index.num_billboards()) probe = 1;
  }
}
BENCHMARK(BM_MarginalGain);

void BM_MarginalGainAfterRemove(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  influence::CoverageCounter counter(&index);
  for (int32_t o = 0; o < index.num_billboards(); o += 2) counter.Add(o);
  int32_t add = 1, rem = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.MarginalGainAfterRemove(add, rem));
    add += 2;
    rem += 2;
    if (add >= index.num_billboards()) add = 1;
    if (rem >= index.num_billboards()) rem = 0;
  }
}
BENCHMARK(BM_MarginalGainAfterRemove);

void BM_InfluenceOfSet(benchmark::State& state) {
  influence::InfluenceIndex& index = SmallIndex();
  std::vector<model::BillboardId> set;
  for (int32_t o = 0; o < index.num_billboards(); o += 7) set.push_back(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.InfluenceOfSet(set));
  }
}
BENCHMARK(BM_InfluenceOfSet)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mroam::bench::RunMicroBenchmarkMain(argc, argv, "micro_influence");
}
