// google-benchmark micro-benchmarks of the solver algorithms on a small
// NYC-like market: greedy heuristics, the local searches, and the
// assignment move primitives they are built from.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/greedy.h"
#include "micro_main.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/local_search.h"
#include "market/workload.h"

namespace {

using namespace mroam;  // NOLINT: harness brevity

struct Fixture {
  model::Dataset dataset;
  influence::InfluenceIndex index;
  std::vector<market::Advertiser> advertisers;

  Fixture()
      : dataset([] {
          gen::NycLikeConfig config;
          config.num_billboards = 300;
          config.num_trajectories = 3000;
          common::Rng rng(1);
          return gen::GenerateNycLike(config, &rng);
        }()),
        index(influence::InfluenceIndex::Build(dataset, 100.0)) {
    market::WorkloadConfig workload;  // alpha=1, p=5% -> 20 advertisers
    common::Rng rng(7);
    advertisers = market::GenerateAdvertisers(index.TotalSupply(), workload,
                                              &rng)
                      .value();
  }
};

Fixture& TheFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// Attaches the greedy selection-effort counters (delta over the timed
// loop, averaged per iteration) so BENCH_micro_algorithms.json shows the
// lazy and naive variants side by side: "deltas" is the number of
// incidence-list walks the selection rule paid for.
void ReportSelectionCounters(benchmark::State& state,
                             const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Global().Snapshot();
  const auto per_iteration = benchmark::Counter::kAvgIterations;
  for (const char* name :
       {"greedy.deltas", "greedy.lazy_hits", "greedy.lazy_reevals"}) {
    state.counters[name] = benchmark::Counter(
        static_cast<double>(after.CounterOf(name) - before.CounterOf(name)),
        per_iteration);
  }
}

template <typename GreedyFn>
void RunGreedyBench(benchmark::State& state, GreedyFn greedy,
                    bool lazy_selection) {
  Fixture& f = TheFixture();
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    core::Assignment s(&f.index, f.advertisers, core::RegretParams{0.5});
    greedy(&s, lazy_selection);
    benchmark::DoNotOptimize(s.TotalRegret());
  }
  ReportSelectionCounters(state, before);
}

void BM_BudgetEffectiveGreedyLazy(benchmark::State& state) {
  RunGreedyBench(state, core::BudgetEffectiveGreedy, /*lazy_selection=*/true);
}
BENCHMARK(BM_BudgetEffectiveGreedyLazy)->Unit(benchmark::kMillisecond);

void BM_BudgetEffectiveGreedyNaive(benchmark::State& state) {
  RunGreedyBench(state, core::BudgetEffectiveGreedy, /*lazy_selection=*/false);
}
BENCHMARK(BM_BudgetEffectiveGreedyNaive)->Unit(benchmark::kMillisecond);

void BM_SynchronousGreedyLazy(benchmark::State& state) {
  RunGreedyBench(state, core::SynchronousGreedy, /*lazy_selection=*/true);
}
BENCHMARK(BM_SynchronousGreedyLazy)->Unit(benchmark::kMillisecond);

void BM_SynchronousGreedyNaive(benchmark::State& state) {
  RunGreedyBench(state, core::SynchronousGreedy, /*lazy_selection=*/false);
}
BENCHMARK(BM_SynchronousGreedyNaive)->Unit(benchmark::kMillisecond);

void BM_AdvertiserDrivenLocalSearch(benchmark::State& state) {
  Fixture& f = TheFixture();
  core::Assignment greedy(&f.index, f.advertisers, core::RegretParams{0.5});
  core::SynchronousGreedy(&greedy);
  for (auto _ : state) {
    core::Assignment s = greedy;
    core::LocalSearchConfig config;
    core::AdvertiserDrivenLocalSearch(&s, config);
    benchmark::DoNotOptimize(s.TotalRegret());
  }
}
BENCHMARK(BM_AdvertiserDrivenLocalSearch)->Unit(benchmark::kMillisecond);

void BM_BillboardDrivenLocalSearch(benchmark::State& state) {
  Fixture& f = TheFixture();
  core::Assignment greedy(&f.index, f.advertisers, core::RegretParams{0.5});
  core::SynchronousGreedy(&greedy);
  for (auto _ : state) {
    core::Assignment s = greedy;
    core::LocalSearchConfig config;
    config.max_sweeps = 2;
    config.max_exchange_candidates = 200;
    common::Rng rng(3);
    core::BillboardDrivenLocalSearch(&s, config, &rng);
    benchmark::DoNotOptimize(s.TotalRegret());
  }
}
BENCHMARK(BM_BillboardDrivenLocalSearch)->Unit(benchmark::kMillisecond);

void BM_DeltaExchangeAcross(benchmark::State& state) {
  Fixture& f = TheFixture();
  core::Assignment s(&f.index, f.advertisers, core::RegretParams{0.5});
  core::SynchronousGreedy(&s);
  // Pick two advertisers with billboards.
  market::AdvertiserId a = 0, b = 1;
  for (int32_t i = 0; i < s.num_advertisers(); ++i) {
    if (!s.BillboardsOf(i).empty()) {
      a = i;
      break;
    }
  }
  for (int32_t i = a + 1; i < s.num_advertisers(); ++i) {
    if (!s.BillboardsOf(i).empty()) {
      b = i;
      break;
    }
  }
  size_t pa = 0, pb = 0;
  for (auto _ : state) {
    const auto& sa = s.BillboardsOf(a);
    const auto& sb = s.BillboardsOf(b);
    benchmark::DoNotOptimize(
        s.DeltaExchangeAcross(sa[pa % sa.size()], sb[pb % sb.size()]));
    ++pa;
    ++pb;
  }
}
BENCHMARK(BM_DeltaExchangeAcross);

void BM_AssignReleaseRoundTrip(benchmark::State& state) {
  Fixture& f = TheFixture();
  core::Assignment s(&f.index, f.advertisers, core::RegretParams{0.5});
  for (auto _ : state) {
    model::BillboardId o = s.FreeBillboards().front();
    s.Assign(o, 0);
    s.Release(o);
    benchmark::DoNotOptimize(s.TotalRegret());
  }
}
BENCHMARK(BM_AssignReleaseRoundTrip);

// The cost a hot path pays for an MROAM_TRACE_SPAN when tracing is not
// enabled (the DESIGN.md §6 "disabled-path cost" number): one relaxed
// atomic load per span.
void BM_DisabledScopedSpan(benchmark::State& state) {
  for (auto _ : state) {
    MROAM_TRACE_SPAN("bench.disabled_span");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_DisabledScopedSpan);

}  // namespace

int main(int argc, char** argv) {
  return mroam::bench::RunMicroBenchmarkMain(argc, argv, "micro_algorithms");
}
