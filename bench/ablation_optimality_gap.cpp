// Optimality-gap study (ours): on small random instances where the exact
// branch-and-bound optimum is computable, how far is each heuristic from
// OPT? MROAM is NP-hard to approximate, so no method can promise a
// factor on the primal — this measures what the heuristics actually
// achieve at small scale.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "core/exact.h"
#include "eval/table_printer.h"
#include "obs/metrics.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  std::cout << "### Optimality gap on small random instances\n"
            << "(12 billboards, 2-3 advertisers, 30 trajectories, "
               "gamma=0.5, 40 instances)\n\n";

  constexpr int kInstances = 40;
  struct Tally {
    double regret_sum = 0.0;
    double worst_excess = 0.0;  // max (method - opt)
    int32_t optimal_hits = 0;
  };
  std::vector<Tally> tallies(core::AllMethods().size());
  double opt_sum = 0.0;
  int64_t nodes_sum = 0;
  int solved = 0;

  common::Rng rng(20240701);
  for (int inst = 0; inst < kInstances; ++inst) {
    const int32_t num_billboards = 12;
    const int32_t num_trajectories = 30;
    std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
    for (auto& list : covered) {
      for (int32_t t = 0; t < num_trajectories; ++t) {
        if (rng.Bernoulli(0.22)) list.push_back(t);
      }
    }
    // Incidence fixture: billboards far apart, trajectories standing at
    // their billboards (same trick as the test suite).
    model::Dataset dataset;
    dataset.name = "gap-instance";
    for (size_t i = 0; i < covered.size(); ++i) {
      model::Billboard b;
      b.id = static_cast<model::BillboardId>(i);
      b.location = {10000.0 * static_cast<double>(i), 0.0};
      dataset.billboards.push_back(b);
    }
    dataset.trajectories.resize(num_trajectories);
    for (int32_t t = 0; t < num_trajectories; ++t) {
      dataset.trajectories[t].id = t;
      dataset.trajectories[t].points = {{-1e6, -1e6}};
    }
    for (size_t i = 0; i < covered.size(); ++i) {
      for (model::TrajectoryId t : covered[i]) {
        dataset.trajectories[t].points.push_back(
            dataset.billboards[i].location);
      }
    }
    auto index = influence::InfluenceIndex::Build(dataset, 1.0);

    std::vector<market::Advertiser> ads;
    int32_t num_ads = 2 + static_cast<int32_t>(rng.UniformU64(2));
    for (int32_t a = 0; a < num_ads; ++a) {
      int64_t demand = 3 + static_cast<int64_t>(rng.UniformU64(12));
      ads.push_back({.id = a,
                     .demand = demand,
                     .payment = std::floor(1.5 * static_cast<double>(demand))});
    }

    core::ExactSolverConfig exact_config;
    exact_config.regret.gamma = 0.5;
    auto exact = core::ExactSolve(index, ads, exact_config);
    if (!exact.ok()) continue;  // node budget: skip the instance
    ++solved;
    opt_sum += exact->optimal_regret;
    nodes_sum += exact->nodes_explored;

    const auto methods = core::AllMethods();
    for (size_t m = 0; m < methods.size(); ++m) {
      core::SolverConfig config;
      config.method = methods[m];
      config.regret.gamma = 0.5;
      config.local_search.restarts = 3;
      core::SolveResult result = core::Solve(index, ads, config);
      double excess = result.breakdown.total - exact->optimal_regret;
      tallies[m].regret_sum += result.breakdown.total;
      tallies[m].worst_excess = std::max(tallies[m].worst_excess, excess);
      if (excess < 1e-9) ++tallies[m].optimal_hits;
    }
  }

  bench::ReportWriter report("ablation_optimality_gap");
  report.AddNumber("instances", kInstances);
  report.AddNumber("solved", solved);
  report.AddNumber("avg_opt_regret", opt_sum / solved);
  report.AddNumber("avg_nodes_explored",
                   static_cast<double>(nodes_sum / std::max(1, solved)));

  eval::TablePrinter table(
      {"method", "avg regret", "avg OPT", "avg excess over OPT",
       "optimal hits", "worst excess"});
  const auto methods = core::AllMethods();
  for (size_t m = 0; m < methods.size(); ++m) {
    table.AddRow(
        {core::MethodName(methods[m]),
         common::FormatDouble(tallies[m].regret_sum / solved, 2),
         common::FormatDouble(opt_sum / solved, 2),
         common::FormatDouble(
             (tallies[m].regret_sum - opt_sum) / solved, 2),
         std::to_string(tallies[m].optimal_hits) + "/" +
             std::to_string(solved),
         common::FormatDouble(tallies[m].worst_excess, 2)});
    using obs::internal::JsonDouble;
    report.AddRaw(
        core::MethodName(methods[m]),
        "{\"avg_regret\":" + JsonDouble(tallies[m].regret_sum / solved) +
            ",\"avg_excess_over_opt\":" +
            JsonDouble((tallies[m].regret_sum - opt_sum) / solved) +
            ",\"optimal_hits\":" + std::to_string(tallies[m].optimal_hits) +
            ",\"worst_excess\":" + JsonDouble(tallies[m].worst_excess) + "}");
  }
  table.Print(std::cout);
  std::cout << "\nexact solver: " << solved << "/" << kInstances
            << " instances solved, avg "
            << common::FormatWithCommas(nodes_sum / std::max(1, solved))
            << " nodes each\n";
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
