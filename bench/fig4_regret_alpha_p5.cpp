// Figure 4: regret vs demand-supply ratio alpha at p = 5% (|A| = 20), NYC.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsAlpha(mroam::bench::City::kNyc, 0.05, "Figure 4", "fig4_regret_alpha_p5");
  return 0;
}
