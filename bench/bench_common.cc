#include "bench_common.h"

#include <cstdlib>
#include <iostream>

#include "bench_report.h"
#include "common/strings.h"

namespace mroam::bench {

const char* CityName(City city) {
  return city == City::kNyc ? "NYC-like" : "SG-like";
}

BenchScale ScaleFromEnv() {
  BenchScale scale;
  const char* env = std::getenv("MROAM_BENCH_SCALE");
  if (env != nullptr) {
    auto factor = common::ParseDouble(env);
    if (factor.ok() && *factor > 0.0) {
      scale.nyc_trajectories = std::max(
          200, static_cast<int32_t>(scale.nyc_trajectories * *factor));
      scale.sg_trajectories = std::max(
          200, static_cast<int32_t>(scale.sg_trajectories * *factor));
    } else {
      std::cerr << "ignoring invalid MROAM_BENCH_SCALE='" << env << "'\n";
    }
  }
  return scale;
}

int32_t ThreadsFromEnv() {
  const char* env = std::getenv("MROAM_BENCH_THREADS");
  if (env == nullptr) return 1;
  auto threads = common::ParseInt64(env);
  if (!threads.ok() || *threads < 0 || *threads > 1024) {
    std::cerr << "ignoring invalid MROAM_BENCH_THREADS='" << env << "'\n";
    return 1;
  }
  return static_cast<int32_t>(*threads);
}

model::Dataset MakeCity(City city, const BenchScale& scale) {
  if (city == City::kNyc) {
    gen::NycLikeConfig config;  // 1,462 billboards (Table 5)
    config.num_trajectories = scale.nyc_trajectories;
    common::Rng rng(0xC17C0DEULL);
    return gen::GenerateNycLike(config, &rng);
  }
  gen::SgLikeConfig config;  // 4,092 billboards (Table 5)
  config.num_trajectories = scale.sg_trajectories;
  common::Rng rng(0x5106C0DEULL);
  return gen::GenerateSgLike(config, &rng);
}

influence::InfluenceIndex MakeIndex(const model::Dataset& dataset,
                                    double lambda) {
  return influence::InfluenceIndex::Build(dataset, lambda);
}

eval::ExperimentConfig DefaultExperimentConfig() {
  eval::ExperimentConfig config;
  config.workload.alpha = 1.0;                     // Table 6 default
  config.workload.avg_individual_demand_ratio = 0.05;  // Table 6 default
  config.regret.gamma = 0.5;                       // Table 6 default
  config.local_search.restarts = 3;
  config.local_search.max_sweeps = 6;
  config.local_search.max_exchange_candidates = 500;
  config.local_search.num_threads = ThreadsFromEnv();
  config.workload_seed = 7;
  config.solver_seed = 42;
  return config;
}

void PrintBanner(const std::string& experiment, const model::Dataset& dataset,
                 const influence::InfluenceIndex& index) {
  model::DatasetStats stats = model::ComputeStats(dataset);
  std::cout << "### " << experiment << "\n"
            << "dataset: " << dataset.name << "  |T|="
            << common::FormatWithCommas(
                   static_cast<int64_t>(stats.num_trajectories))
            << "  |U|=" << stats.num_billboards
            << "  lambda=" << index.lambda() << "m  I*="
            << common::FormatWithCommas(index.TotalSupply()) << "\n"
            << "defaults (Table 6): alpha=100%  p=5%  gamma=0.5\n\n";
}

void RunRegretVsAlpha(City city, double p, const std::string& figure_name,
                      const std::string& bench_slug) {
  BenchScale scale = ScaleFromEnv();
  model::Dataset dataset = MakeCity(city, scale);
  influence::InfluenceIndex index = MakeIndex(dataset, /*lambda=*/100.0);
  PrintBanner(figure_name, dataset, index);

  eval::ExperimentConfig config = DefaultExperimentConfig();
  config.workload.avg_individual_demand_ratio = p;
  const int32_t advertisers_at_full_demand =
      market::NumAdvertisers(config.workload);  // |A| at alpha=100%

  std::vector<eval::ExperimentPoint> points;
  for (double alpha : {0.4, 0.6, 0.8, 1.0, 1.2}) {
    config.workload.alpha = alpha;
    auto point = eval::RunExperimentPoint(
        index, config,
        "alpha=" + common::FormatDouble(alpha * 100, 0) + "%");
    if (!point.ok()) {
      std::cerr << "point failed: " << point.status() << "\n";
      continue;
    }
    points.push_back(std::move(point).value());
  }
  eval::PrintExperimentSeries(
      std::cout,
      figure_name + ": regret vs alpha at p=" +
          common::FormatDouble(p * 100, 0) + "% (|A|=" +
          std::to_string(advertisers_at_full_demand) + " at alpha=100%)",
      points);

  ReportWriter report(bench_slug);
  report.AddNote("figure", figure_name);
  report.SetDataset(dataset, index);
  report.AddNumber("p", p);
  report.AddNumber("threads", ThreadsFromEnv());
  report.AddSeries("points", points);
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
  }
}

void RunRegretVsGamma(City city, const std::string& figure_name,
                      const std::string& bench_slug) {
  BenchScale scale = ScaleFromEnv();
  model::Dataset dataset = MakeCity(city, scale);
  influence::InfluenceIndex index = MakeIndex(dataset, /*lambda=*/100.0);
  PrintBanner(figure_name, dataset, index);

  eval::ExperimentConfig config = DefaultExperimentConfig();
  std::vector<eval::ExperimentPoint> points;
  for (double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    config.regret.gamma = gamma;
    auto point = eval::RunExperimentPoint(
        index, config, "gamma=" + common::FormatDouble(gamma, 2));
    if (!point.ok()) {
      std::cerr << "point failed: " << point.status() << "\n";
      continue;
    }
    points.push_back(std::move(point).value());
  }
  eval::PrintExperimentSeries(
      std::cout, figure_name + ": regret vs gamma (" + CityName(city) + ")",
      points);

  ReportWriter report(bench_slug);
  report.AddNote("figure", figure_name);
  report.SetDataset(dataset, index);
  report.AddNumber("threads", ThreadsFromEnv());
  report.AddSeries("points", points);
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
  }
}

}  // namespace mroam::bench
