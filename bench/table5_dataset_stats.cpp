// Table 5: dataset statistics — |T|, |U|, average trip distance and travel
// time — for the two synthetic cities, next to the paper's reported values
// for the real datasets they stand in for.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::ReportWriter report("table5_dataset_stats");

  eval::TablePrinter table({"dataset", "|T|", "|U|", "AvgDistance",
                            "AvgTravelTime", "source"});
  table.AddRow({"NYC (paper)", "1,700,000", "1462", "2.9km", "569s",
                "TLC taxi + LAMAR"});
  table.AddRow({"SG (paper)", "2,200,000", "4092", "4.2km", "1342s",
                "EZ-link + JCDecaux"});

  for (bench::City city : {bench::City::kNyc, bench::City::kSg}) {
    model::Dataset dataset = bench::MakeCity(city, scale);
    model::DatasetStats stats = model::ComputeStats(dataset);
    table.AddRow(
        {dataset.name,
         common::FormatWithCommas(static_cast<int64_t>(stats.num_trajectories)),
         std::to_string(stats.num_billboards),
         common::FormatDouble(stats.avg_distance_km, 1) + "km",
         common::FormatDouble(stats.avg_travel_time_sec, 0) + "s",
         "synthetic (DESIGN.md §4)"});
    using obs::internal::JsonDouble;
    report.AddRaw(
        dataset.name,
        "{\"trajectories\":" + std::to_string(stats.num_trajectories) +
            ",\"billboards\":" + std::to_string(stats.num_billboards) +
            ",\"avg_distance_km\":" + JsonDouble(stats.avg_distance_km) +
            ",\"avg_travel_time_sec\":" +
            JsonDouble(stats.avg_travel_time_sec) + "}");
  }

  std::cout << "### Table 5: dataset statistics\n"
            << "(synthetic trajectory counts are scaled down for the bench "
               "budget;\n set MROAM_BENCH_SCALE to change)\n\n";
  table.Print(std::cout);
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
