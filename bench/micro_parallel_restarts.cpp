// Parallel restart engine study: wall-clock speedup and bit-level
// determinism of Algorithm 3's randomized restarts across thread counts.
// Writes BENCH_parallel.json (cwd) with one record per thread count so CI
// can track both the speedup curve and the determinism invariant
// (TotalRegret at N threads must equal TotalRegret at 1 thread).
//
// Scale with MROAM_BENCH_SCALE as usual; the restart count (default 8,
// override MROAM_BENCH_RESTARTS) is the parallelism available to the
// engine, so speedup saturates at min(threads, restarts + 1).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/solver.h"
#include "market/workload.h"

namespace mroam::bench {
namespace {

struct ThreadPoint {
  int32_t threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  double total_regret = 0.0;
  bool deterministic = true;
  std::string report_json;  ///< the run's obs::RunReport, serialized
};

int32_t RestartsFromEnv() {
  const char* env = std::getenv("MROAM_BENCH_RESTARTS");
  if (env == nullptr) return 8;
  auto parsed = common::ParseInt64(env);
  if (!parsed.ok() || *parsed < 0 || *parsed > 4096) {
    std::cerr << "ignoring invalid MROAM_BENCH_RESTARTS='" << env << "'\n";
    return 8;
  }
  return static_cast<int32_t>(*parsed);
}

void WriteJson(const std::string& path, const model::Dataset& dataset,
               const influence::InfluenceIndex& index, int32_t restarts,
               const std::vector<ThreadPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  out << "{\n"
      << "  \"bench\": \"micro_parallel_restarts\",\n"
      << "  \"dataset\": \"" << dataset.name << "\",\n"
      << "  \"trajectories\": " << dataset.trajectories.size() << ",\n"
      << "  \"billboards\": " << dataset.billboards.size() << ",\n"
      << "  \"lambda\": " << index.lambda() << ",\n"
      << "  \"restarts\": " << restarts << ",\n"
      << "  \"hardware_threads\": "
      << common::ThreadPool::HardwareThreads() << ",\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ThreadPoint& p = points[i];
    out << "    {\"threads\": " << p.threads << ", \"seconds\": "
        << common::FormatDouble(p.seconds, 4) << ", \"speedup\": "
        << common::FormatDouble(p.speedup, 3) << ", \"total_regret\": "
        << common::FormatDouble(p.total_regret, 6)
        << ", \"deterministic\": " << (p.deterministic ? "true" : "false")
        << ",\n     \"report\": " << p.report_json
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int Run() {
  BenchScale scale = ScaleFromEnv();
  scale.nyc_trajectories = std::max(200, scale.nyc_trajectories / 4);
  model::Dataset dataset = MakeCity(City::kNyc, scale);
  influence::InfluenceIndex index = MakeIndex(dataset, /*lambda=*/100.0);
  PrintBanner("micro_parallel_restarts", dataset, index);

  eval::ExperimentConfig experiment = DefaultExperimentConfig();
  common::Rng workload_rng(experiment.workload_seed);
  auto ads = market::GenerateAdvertisers(index.TotalSupply(),
                                         experiment.workload, &workload_rng);
  if (!ads.ok()) {
    std::cerr << "workload generation failed: " << ads.status() << "\n";
    return 1;
  }

  const int32_t restarts = RestartsFromEnv();
  core::SolverConfig solver;
  solver.method = core::Method::kBls;
  solver.regret = experiment.regret;
  solver.local_search = experiment.local_search;
  solver.local_search.restarts = restarts;
  solver.seed = experiment.solver_seed;

  std::cout << "BLS, " << restarts << " restarts (+1 incumbent), "
            << ads->size() << " advertisers, hardware threads: "
            << common::ThreadPool::HardwareThreads() << "\n\n"
            << "threads  seconds   speedup  total-regret  deterministic\n";

  std::vector<ThreadPoint> points;
  for (int32_t threads : {1, 2, 4, 8}) {
    solver.local_search.num_threads = threads;
    common::Stopwatch watch;
    core::SolveResult result = core::Solve(index, *ads, solver);
    ThreadPoint point;
    point.threads = threads;
    point.seconds = watch.ElapsedSeconds();
    point.total_regret = result.breakdown.total;
    point.report_json = result.report.ToJson();
    point.speedup =
        points.empty() ? 1.0
                       : points.front().seconds / std::max(point.seconds,
                                                           1e-9);
    // Bit-identical to the 1-thread run: the engine's core guarantee.
    point.deterministic =
        points.empty() ||
        point.total_regret == points.front().total_regret;
    points.push_back(point);
    std::cout << common::FormatDouble(threads, 0) << "        "
              << common::FormatDouble(point.seconds, 3) << "    "
              << common::FormatDouble(point.speedup, 2) << "x    "
              << common::FormatDouble(point.total_regret, 2) << "      "
              << (point.deterministic ? "yes" : "NO — BUG") << "\n";
  }

  WriteJson("BENCH_parallel.json", dataset, index, restarts, points);
  std::cout << "\nwrote BENCH_parallel.json\n";

  bool all_deterministic = true;
  for (const ThreadPoint& p : points) {
    all_deterministic = all_deterministic && p.deterministic;
  }
  if (!all_deterministic) {
    std::cerr << "DETERMINISM VIOLATION: thread count changed the result\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mroam::bench

int main() { return mroam::bench::Run(); }
