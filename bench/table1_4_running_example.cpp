// Tables 1-4: the paper's running example, reproduced exactly — billboard
// influences, advertiser contracts, the regrets of strategies 1 and 2, and
// what each solver method finds.
#include <iostream>

#include "bench_report.h"
#include "common/strings.h"
#include "core/solver.h"
#include "eval/table_printer.h"
#include "influence/influence_index.h"

namespace {
using namespace mroam;  // NOLINT: harness brevity

model::Dataset BuildPaperDataset() {
  // Table 1 influences (I(o_3)=3 recovered from Tables 3-4).
  const int influences[6] = {2, 6, 3, 7, 1, 1};
  model::Dataset dataset;
  dataset.name = "Tables 1-4 example";
  int32_t next = 0;
  for (int i = 0; i < 6; ++i) {
    model::Billboard b;
    b.id = i;
    b.location = {10000.0 * i, 0.0};
    dataset.billboards.push_back(b);
    for (int k = 0; k < influences[i]; ++k) {
      model::Trajectory t;
      t.id = next++;
      t.points = {b.location};
      dataset.trajectories.push_back(std::move(t));
    }
  }
  return dataset;
}

void PrintStrategy(const influence::InfluenceIndex& index,
                   const std::vector<market::Advertiser>& ads,
                   const char* title,
                   const std::vector<std::vector<model::BillboardId>>& sets) {
  core::Assignment plan(&index, ads, core::RegretParams{0.5});
  for (size_t a = 0; a < sets.size(); ++a) {
    for (model::BillboardId o : sets[a]) {
      plan.Assign(o, static_cast<market::AdvertiserId>(a));
    }
  }
  eval::TablePrinter table({"advertiser", "I(S_i)", "I_i", "satisfy",
                            "I(S_i)-I_i", "regret"});
  for (int32_t a = 0; a < plan.num_advertisers(); ++a) {
    std::string label = "a";
    label += std::to_string(a + 1);
    table.AddRow({label, std::to_string(plan.InfluenceOf(a)),
                  std::to_string(ads[a].demand),
                  plan.IsSatisfied(a) ? "Y" : "N",
                  std::to_string(plan.InfluenceOf(a) - ads[a].demand),
                  common::FormatDouble(plan.RegretOf(a), 2)});
  }
  std::cout << title << " (total regret "
            << common::FormatDouble(plan.TotalRegret(), 2) << ")\n";
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  model::Dataset dataset = BuildPaperDataset();
  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(dataset, 1.0);
  std::vector<market::Advertiser> ads(3);
  ads[0] = {.id = 0, .demand = 5, .payment = 10.0};  // Table 2
  ads[1] = {.id = 1, .demand = 7, .payment = 11.0};
  ads[2] = {.id = 2, .demand = 8, .payment = 20.0};

  std::cout << "### Tables 1-4: running example (gamma=0.5)\n\n";
  PrintStrategy(index, ads, "Strategy 1 (Table 3)", {{1}, {3}, {0, 2, 4, 5}});
  PrintStrategy(index, ads, "Strategy 2 (Table 4)", {{0, 2}, {3}, {1, 4, 5}});

  bench::ReportWriter report("table1_4_running_example");
  report.SetDataset(dataset, index);
  eval::TablePrinter table({"method", "regret", "satisfied"});
  for (core::Method method : core::AllMethods()) {
    core::SolverConfig config;
    config.method = method;
    core::SolveResult result = core::Solve(index, ads, config);
    std::string satisfied = std::to_string(result.breakdown.satisfied_count);
    satisfied += "/3";
    table.AddRow({core::MethodName(method),
                  common::FormatDouble(result.breakdown.total, 2),
                  satisfied});
    report.AddRunReport(core::MethodName(method), result.report);
  }
  std::cout << "Solver results on the example:\n";
  table.Print(std::cout);
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
