// Extension experiment (ours): the paper's motivating daily operation
// (§1 — "the host needs to deal with multiple advertisers coming every
// day") as a rolling simulation. Contracts arrive every day and last a
// week; we compare re-optimizing the whole book daily (BLS) against
// locking existing deployments and serving only newcomers greedily.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "core/daily_market.h"
#include "eval/table_printer.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  model::Dataset dataset = bench::MakeCity(bench::City::kNyc, scale);
  influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
  bench::PrintBanner("Extension: daily market, replanning policies",
                     dataset, index);

  constexpr int kDays = 12;
  constexpr int kArrivalsPerDay = 3;
  const int64_t supply = index.TotalSupply();

  bench::ReportWriter report("ext_daily_market");
  report.SetDataset(dataset, index);
  report.AddNumber("days", kDays);
  report.AddNumber("arrivals_per_day", kArrivalsPerDay);

  for (core::ReplanPolicy policy : {core::ReplanPolicy::kReoptimizeAll,
                                    core::ReplanPolicy::kLockExisting}) {
    core::DailyMarketConfig config;
    config.policy = policy;
    config.contract_duration_days = 7;
    config.solver.method = core::Method::kBls;
    config.solver.local_search.restarts = 2;
    config.solver.local_search.max_sweeps = 4;
    config.solver.local_search.max_exchange_candidates = 300;
    core::DailyMarket market(&index, config);

    // Same arrival stream for both policies.
    common::Rng rng(777);
    eval::TablePrinter table({"day", "active", "arrived", "expired",
                              "regret", "satisfied", "time_s"});
    double cumulative_regret = 0.0;
    double cumulative_seconds = 0.0;
    std::string days_json = "[";
    for (int day = 0; day < kDays; ++day) {
      std::vector<market::Advertiser> arrivals;
      for (int k = 0; k < kArrivalsPerDay; ++k) {
        market::Advertiser a;
        a.id = 0;  // reassigned by the market
        double fraction = rng.UniformDouble(0.01, 0.04);
        a.demand = std::max<int64_t>(
            1, static_cast<int64_t>(fraction * static_cast<double>(supply)));
        a.payment = std::floor(rng.UniformDouble(0.9, 1.1) *
                               static_cast<double>(a.demand));
        arrivals.push_back(a);
      }
      core::DayResult r = market.AdvanceDay(std::move(arrivals));
      cumulative_regret += r.breakdown.total;
      cumulative_seconds += r.seconds;
      table.AddRow({std::to_string(r.day), std::to_string(r.active_contracts),
                    std::to_string(r.arrived), std::to_string(r.expired),
                    common::FormatDouble(r.breakdown.total, 1),
                    std::to_string(r.breakdown.satisfied_count) + "/" +
                        std::to_string(r.active_contracts),
                    common::FormatDouble(r.seconds, 3)});
      if (day > 0) days_json.push_back(',');
      days_json.push_back('\n');
      days_json += r.report.ToJson();
    }
    days_json += "\n]";
    std::cout << "policy: " << core::ReplanPolicyName(policy) << "\n";
    table.Print(std::cout);
    std::cout << "cumulative regret over " << kDays << " days: "
              << common::FormatDouble(cumulative_regret, 1) << "  (compute "
              << common::FormatDouble(cumulative_seconds, 2) << " s)\n\n";
    const std::string slug = core::ReplanPolicyName(policy);
    report.AddNumber(slug + ".cumulative_regret", cumulative_regret);
    report.AddNumber(slug + ".cumulative_seconds", cumulative_seconds);
    report.AddRaw(slug + ".days", std::move(days_json));
  }
  std::cout << "Re-optimizing daily costs more compute but repacks the\n"
               "inventory as contracts churn; locking is what hosts do when\n"
               "customers expect stable placements.\n";
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
