// Figure 2: regret vs demand-supply ratio alpha at p = 1% (|A| = 100
// small advertisers), NYC.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsAlpha(mroam::bench::City::kNyc, 0.01, "Figure 2", "fig2_regret_alpha_p1");
  return 0;
}
