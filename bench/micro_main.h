// Shared main() body for the google-benchmark micro binaries. Injects
// --benchmark_out=BENCH_<name>.json --benchmark_out_format=json when the
// caller did not pass their own --benchmark_out, so every bench binary in
// this directory drops a uniformly named JSON artifact next to the
// human-readable console table.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace mroam::bench {

inline int RunMicroBenchmarkMain(int argc, char** argv,
                                 const std::string& bench_name) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_" + bench_name + ".json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mroam::bench
