// Figure 5: regret vs demand-supply ratio alpha at p = 10% (|A| = 10 big
// advertisers), NYC.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsAlpha(mroam::bench::City::kNyc, 0.10, "Figure 5", "fig5_regret_alpha_p10");
  return 0;
}
