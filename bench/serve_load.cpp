// Load generator for the market serving layer.
//
// Boots an in-process MarketServer over a generated city, then drives it
// with N client threads submitting POST /contracts over persistent
// (keep-alive) connections. Admission is asynchronous: a submission is
// answered 202 with a ticket immediately, and the client polls
// GET /tickets/<id> on the same connection until the group commit
// publishes the outcome — a submission's latency is POST to committed,
// so it includes queueing + the batch's AdvanceDay. Writes
// BENCH_serve.json: commit latency percentiles (p50/p95/p99), per-stage
// latency percentiles (stage_queue_wait/replan/respond/read
// _ms_p50/p95/p99, from the server's serve.stage.* histograms),
// throughput, and batch statistics.
//
// Also runs a deterministic in-process replan comparison (no sockets, no
// timing-dependent batching): the same churn schedule driven through a
// kReoptimizeAll and a kIncremental DailyMarket, reporting seconds/day,
// final regret, fallback count, and boards touched for both — the
// apples-to-apples numbers behind the incremental replanner's acceptance
// criterion. --skip-compare drops that half (the tier-1 ctest entry does;
// it gates only the serve-path stage latencies).
//
// The overload sweep (--skip-overload drops it) drives a burst at a
// deliberately tiny admission queue plus two slow-loris probes, and
// records how the overload contract held (DESIGN.md §6.2): every request
// resolves as accepted/shed/error, exactly max_queue acceptances commit
// through the drain, the queue never exceeds max_queue, 429s carry
// Retry-After, and the probes get 408. The overload_*-mismatch counters
// are deterministic zeros gated by check_serve_overload_regression.
//
// The open-loop arrival-rate sweep (--skip-openloop drops it) runs a
// keep-alive client pool against an uncapped admission queue at a
// ladder of target arrival rates (requests are scheduled by the clock,
// not by completions) and reports the peak accepted submission rate;
// check_serve_openloop_regression gates a generous floor on it.
//
//   serve_load [--submissions N] [--clients N]
//              [--policy lock|reopt|incremental]
//              [--batch-max N] [--batch-delay-ms F] [--skip-compare]
//              [--skip-overload] [--skip-openloop]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/daily_market.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"
#include "market/workload.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/market_server.h"

namespace mroam::bench {
namespace {

struct LoadOptions {
  int submissions = 1200;
  int clients = 8;
  std::string policy = "lock";
  int batch_max = 64;
  double batch_delay_ms = 5.0;
  /// Skip the deterministic replan comparison (the slow half) — the
  /// tier-1 ctest entry gates only the serve-path stage latencies.
  bool skip_compare = false;
  /// Skip the overload-contract sweep.
  bool skip_overload = false;
  /// Skip the open-loop arrival-rate sweep.
  bool skip_openloop = false;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  rank = std::min(rank, sorted.size() - 1);
  return sorted[rank];
}

struct ReplanCompareOutcome {
  double seconds_per_day = 0.0;
  double boards_touched_per_day = 0.0;
  double final_regret = 0.0;
  int fallbacks = 0;
};

/// Drives one DailyMarket through a deterministic churn schedule: each day
/// admits a fixed slice of `arrivals` and cancels one early ticket, so the
/// two policies see byte-identical inputs and the timing difference is
/// purely the replanner's.
ReplanCompareOutcome DriveReplanSchedule(
    const influence::InfluenceIndex& index, core::ReplanPolicy policy,
    const std::vector<market::Advertiser>& arrivals, int days,
    int per_day) {
  core::DailyMarketConfig config;
  // Full solves run the quality solver a production host would replan
  // with (kGGlobal would understate what the warm start saves).
  config.solver.method = core::Method::kBls;
  config.contract_duration_days = 10;
  config.policy = policy;
  core::DailyMarket market(&index, config);

  ReplanCompareOutcome outcome;
  size_t next = 0;
  for (int day = 1; day <= days; ++day) {
    if (day >= 4 && day % 3 == 1) {
      // Cancel an early still-active ticket; a miss is a harmless no-op.
      market.Cancel(static_cast<int64_t>(day) - 3);
    }
    std::vector<market::Advertiser> batch;
    for (int k = 0; k < per_day && next < arrivals.size(); ++k) {
      batch.push_back(arrivals[next++]);
    }
    core::DayResult result = market.AdvanceDay(std::move(batch));
    outcome.seconds_per_day += result.seconds;
    outcome.boards_touched_per_day +=
        static_cast<double>(result.boards_touched);
    outcome.final_regret = result.breakdown.total;
    if (result.full_solve_fallback) ++outcome.fallbacks;
  }
  outcome.seconds_per_day /= static_cast<double>(days);
  outcome.boards_touched_per_day /= static_cast<double>(days);
  return outcome;
}

/// The deterministic in-process replan comparison (no sockets): the same
/// churn schedule through kReoptimizeAll and kIncremental. Returns false
/// on workload-generation failure.
bool RunReplanCompare(const influence::InfluenceIndex& index,
                      ReportWriter* report) {
  const int compare_days = 30;
  const int compare_per_day = 4;
  common::Rng compare_rng(23);
  market::WorkloadConfig compare_workload;
  compare_workload.avg_individual_demand_ratio = 0.01;
  // |A| = alpha / p: sized to cover the whole schedule.
  compare_workload.alpha =
      compare_workload.avg_individual_demand_ratio *
      static_cast<double>(compare_days * compare_per_day);
  auto compare_arrivals = market::GenerateAdvertisers(
      index.TotalSupply(), compare_workload, &compare_rng);
  if (!compare_arrivals.ok()) {
    MROAM_LOG(Error) << compare_arrivals.status().ToString();
    return false;
  }
  ReplanCompareOutcome full = DriveReplanSchedule(
      index, core::ReplanPolicy::kReoptimizeAll, *compare_arrivals,
      compare_days, compare_per_day);
  ReplanCompareOutcome incremental = DriveReplanSchedule(
      index, core::ReplanPolicy::kIncremental, *compare_arrivals,
      compare_days, compare_per_day);
  report->AddNumber("replan_compare_days", compare_days);
  report->AddNumber("replan_compare_full_seconds_per_day",
                    full.seconds_per_day);
  report->AddNumber("replan_compare_incremental_seconds_per_day",
                    incremental.seconds_per_day);
  report->AddNumber("replan_compare_speedup",
                    incremental.seconds_per_day > 0.0
                        ? full.seconds_per_day / incremental.seconds_per_day
                        : 0.0);
  report->AddNumber("replan_compare_full_final_regret", full.final_regret);
  report->AddNumber("replan_compare_incremental_final_regret",
                    incremental.final_regret);
  report->AddNumber("replan_compare_incremental_fallbacks",
                    incremental.fallbacks);
  report->AddNumber("replan_compare_full_boards_touched_per_day",
                    full.boards_touched_per_day);
  report->AddNumber("replan_compare_incremental_boards_touched_per_day",
                    incremental.boards_touched_per_day);
  std::printf(
      "replan_compare: full %.4fs/day (%.1f boards), incremental %.4fs/day "
      "(%.1f boards, %d fallbacks), speedup %.2fx, final regret "
      "%.1f vs %.1f\n",
      full.seconds_per_day, full.boards_touched_per_day,
      incremental.seconds_per_day, incremental.boards_touched_per_day,
      incremental.fallbacks,
      incremental.seconds_per_day > 0.0
          ? full.seconds_per_day / incremental.seconds_per_day
          : 0.0,
      full.final_regret, incremental.final_regret);
  return true;
}

/// Raw TCP connect to 127.0.0.1:port — for the slow-loris probes, which
/// misbehave in ways HttpFetch cannot.
int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RecvAll(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

/// Overload sweep: an admission queue that can only drain on Stop()
/// (the batch never fills, the delay never expires inside the sweep
/// window) makes the outcome split machine-independent — exactly
/// max_queue submissions are accepted with 202 and commit through the
/// drain's final replan, every other submission sheds with 429 +
/// Retry-After, and the two slow-loris probes trip the read deadline.
/// Each invariant's violation count is reported as an overload_* number
/// for the regression gate; all must be exactly zero on any machine.
bool RunOverloadSweep(const influence::InfluenceIndex& index,
                      ReportWriter* report) {
  serve::MarketServerConfig config;
  config.port = 0;
  config.num_threads = 8;
  config.max_batch = 1000;            // never fills during the sweep
  config.max_batch_delay_seconds = 60.0;  // never expires during the sweep
  config.max_queue = 12;
  config.degraded_watermark = 6;
  config.read_idle_timeout_ms = 60;   // what the loris probes trip
  config.request_timeout_ms = 5000;
  config.market.policy = core::ReplanPolicy::kLockExisting;
  config.market.solver.method = core::Method::kGGlobal;

  serve::MarketServer server(&index, config);
  common::Status started = server.Start();
  if (!started.ok()) {
    MROAM_LOG(Error) << "overload sweep server start failed: "
                     << started.ToString();
    return false;
  }
  const int port = server.port();

  common::Rng rng(29);
  market::WorkloadConfig workload;
  workload.avg_individual_demand_ratio = 0.01;
  auto advertisers =
      market::GenerateAdvertisers(index.TotalSupply(), workload, &rng);
  if (!advertisers.ok()) {
    MROAM_LOG(Error) << advertisers.status().ToString();
    return false;
  }

  auto wall_start = std::chrono::steady_clock::now();

  // Two slow-loris probes: partial head, then stall until the server's
  // idle deadline answers 408 and reclaims the worker.
  std::atomic<int> loris_408{0};
  std::vector<std::thread> probes;
  for (int i = 0; i < 2; ++i) {
    probes.emplace_back([&] {
      int fd = ConnectTo(port);
      if (fd < 0) return;
      (void)serve::WriteAll(fd, "POST /contracts HTTP/1.1\r\n");
      std::string response = RecvAll(fd);
      ::close(fd);
      if (response.rfind("HTTP/1.1 408", 0) == 0) loris_408.fetch_add(1);
    });
  }

  // The burst: one shot per millisecond, no waiting for completions —
  // arrival rate is set by the clock, not the server. Submissions are
  // answered immediately (202 accepted or 429 shed); the accepted
  // tickets park in the queue until the drain's group commit.
  constexpr int kRequests = 240;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> errors{0};
  std::atomic<int> retry_after_missing{0};
  std::mutex tickets_mu;
  std::vector<int64_t> tickets;
  std::vector<std::thread> shots;
  shots.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    shots.emplace_back([&, i] {
      const market::Advertiser& terms =
          (*advertisers)[static_cast<size_t>(i) % advertisers->size()];
      std::string body =
          "{\"demand\": " + std::to_string(terms.demand) +
          ", \"payment\": " + common::FormatDouble(terms.payment, 3) + "}";
      auto response =
          serve::HttpFetch("127.0.0.1", port, "POST", "/contracts", body);
      if (!response.ok()) {
        errors.fetch_add(1);
      } else if (response->status == 202) {
        accepted.fetch_add(1);
        auto ticket = serve::ExtractJsonNumber(response->body, "ticket");
        if (ticket.ok()) {
          std::lock_guard<std::mutex> lock(tickets_mu);
          tickets.push_back(static_cast<int64_t>(*ticket));
        }
      } else if (response->status == 429) {
        shed.fetch_add(1);
        auto retry_after =
            common::ParseInt64(response->HeaderOr("retry-after"));
        if (!retry_after.ok() || *retry_after < 1 || *retry_after > 60) {
          retry_after_missing.fetch_add(1);
        }
      } else {
        errors.fetch_add(1);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : shots) t.join();
  for (std::thread& t : probes) t.join();

  // Sample the peak queue depth before the drain releases it.
  int64_t max_depth_observed = 0;
  {
    auto report_fetch =
        serve::HttpFetch("127.0.0.1", port, "GET", "/report");
    if (report_fetch.ok()) {
      auto parsed =
          serve::ExtractJsonNumber(report_fetch->body, "queue_depth");
      if (parsed.ok()) max_depth_observed = static_cast<int64_t>(*parsed);
    }
  }
  // Stop() drains: the parked submissions commit through a final replan;
  // the ticket table outlives the sockets, so every acceptance is
  // verifiable afterwards.
  server.Stop();
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  int committed_verified = 0;
  for (int64_t ticket : tickets) {
    if (server.TicketStatus(ticket) ==
        serve::MarketServer::TicketState::kCommitted) {
      ++committed_verified;
    }
  }

  const int resolved = accepted.load() + shed.load() + errors.load();
  const int64_t unresolved = kRequests - resolved;
  const int64_t queue_overrun =
      std::max<int64_t>(0, max_depth_observed - config.max_queue);
  // Both halves of the acceptance contract: exactly max_queue 202s, and
  // every one of them committed by the drain.
  const int64_t commit_mismatch =
      std::abs(committed_verified - config.max_queue) +
      std::abs(accepted.load() - committed_verified);
  const int64_t shed_mismatch =
      std::abs(shed.load() - (kRequests - config.max_queue));
  const int64_t loris_missed = 2 - loris_408.load();
  const int64_t read_timeout_mismatch =
      std::abs(server.read_timeouts() - 2);

  report->AddNumber("overload_requests", kRequests);
  report->AddNumber("overload_accepted", accepted.load());
  report->AddNumber("overload_committed", committed_verified);
  report->AddNumber("overload_shed", shed.load());
  report->AddNumber("overload_shed_rate",
                    static_cast<double>(shed.load()) / kRequests);
  report->AddNumber("overload_errors", errors.load());
  report->AddNumber("overload_read_timeouts",
                    static_cast<double>(server.read_timeouts()));
  report->AddNumber("overload_max_queue_depth",
                    static_cast<double>(max_depth_observed));
  report->AddNumber("overload_wall_seconds", wall_seconds);
  // The gated invariants — deterministic zeros on any machine.
  report->AddNumber("overload_unresolved",
                    static_cast<double>(unresolved));
  report->AddNumber("overload_queue_overrun",
                    static_cast<double>(queue_overrun));
  report->AddNumber("overload_commit_mismatch",
                    static_cast<double>(commit_mismatch));
  report->AddNumber("overload_shed_mismatch",
                    static_cast<double>(shed_mismatch));
  report->AddNumber("overload_retry_after_missing",
                    retry_after_missing.load());
  report->AddNumber("overload_loris_missed",
                    static_cast<double>(loris_missed));
  report->AddNumber("overload_read_timeout_mismatch",
                    static_cast<double>(read_timeout_mismatch));

  std::printf(
      "overload_sweep: %d accepted (%d committed) / %d shed / %d errors of "
      "%d in %.2fs (shed rate %.2f), max queue depth %lld/%d, "
      "%d/2 loris 408s\n",
      accepted.load(), committed_verified, shed.load(), errors.load(),
      kRequests, wall_seconds,
      static_cast<double>(shed.load()) / kRequests,
      static_cast<long long>(max_depth_observed), config.max_queue,
      loris_408.load());
  return true;
}

/// Open-loop arrival-rate sweep: a pool of keep-alive clients fires
/// submissions on a clock-driven schedule (an open loop — the next shot's
/// time does not depend on the previous shot's completion) at a ladder of
/// target rates against an effectively uncapped admission queue, and
/// reports the peak rate at which every submission was accepted with 202.
/// The gate (check_serve_openloop_regression) holds a generous floor well
/// under what any development machine sustains, plus exact zeros on the
/// error counters.
bool RunOpenLoopSweep(const influence::InfluenceIndex& index,
                      ReportWriter* report) {
  serve::MarketServerConfig config;
  config.port = 0;
  config.num_threads = 8;
  config.max_batch = 512;
  config.max_batch_delay_seconds = 0.002;
  config.max_queue = 1 << 20;              // effectively uncapped
  config.degraded_watermark = 1 << 20;
  config.market.policy = core::ReplanPolicy::kLockExisting;
  config.market.solver.method = core::Method::kGGlobal;
  // Short contracts keep the active set — and thus each group commit's
  // replan — bounded while tens of thousands of submissions stream in.
  config.market.contract_duration_days = 2;

  serve::MarketServer server(&index, config);
  common::Status started = server.Start();
  if (!started.ok()) {
    MROAM_LOG(Error) << "openloop sweep server start failed: "
                     << started.ToString();
    return false;
  }
  const int port = server.port();

  common::Rng rng(31);
  market::WorkloadConfig workload;
  workload.avg_individual_demand_ratio = 0.01;
  auto advertisers =
      market::GenerateAdvertisers(index.TotalSupply(), workload, &rng);
  if (!advertisers.ok()) {
    MROAM_LOG(Error) << advertisers.status().ToString();
    return false;
  }

  constexpr int kClients = 8;
  constexpr double kWindowSeconds = 0.4;
  const std::vector<int> rates = {2000, 6000, 12000, 24000};

  // Persistent connections for the whole sweep: the pool is created once
  // and each client reconnects only if the server closed on it.
  std::vector<serve::HttpClient> pool(kClients);

  double peak_accepted_per_second = 0.0;
  int64_t total_accepted = 0;
  int64_t total_errors = 0;
  int64_t reconnects = 0;
  std::string ladder_summary;
  for (int rate : rates) {
    std::atomic<int> window_accepted{0};
    std::atomic<int> window_errors{0};
    std::atomic<int> window_reconnects{0};
    auto window_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        serve::HttpClient& client = pool[static_cast<size_t>(c)];
        // Each client owns every kClients-th slot of the arrival
        // schedule; shots fire at their scheduled absolute time (or
        // immediately when behind — open loop, clock-driven).
        const double interval_s = static_cast<double>(kClients) / rate;
        const int shots =
            static_cast<int>(kWindowSeconds / interval_s) + 1;
        for (int s = 0; s < shots; ++s) {
          auto due = window_start +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(s * interval_s));
          std::this_thread::sleep_until(due);
          if (!client.connected()) {
            window_reconnects.fetch_add(1);
            if (!client.Connect("127.0.0.1", port).ok()) {
              window_errors.fetch_add(1);
              continue;
            }
          }
          const market::Advertiser& terms =
              (*advertisers)[static_cast<size_t>(c + s * kClients) %
                             advertisers->size()];
          std::string body =
              "{\"demand\": " + std::to_string(terms.demand) +
              ", \"payment\": " + common::FormatDouble(terms.payment, 3) +
              "}";
          auto response = client.Fetch("POST", "/contracts", body);
          if (response.ok() && response->status == 202) {
            window_accepted.fetch_add(1);
          } else {
            window_errors.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double window_wall = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - window_start)
                             .count();
    const double accepted_per_second =
        window_wall > 0.0 ? window_accepted.load() / window_wall : 0.0;
    peak_accepted_per_second =
        std::max(peak_accepted_per_second, accepted_per_second);
    total_accepted += window_accepted.load();
    total_errors += window_errors.load();
    reconnects += window_reconnects.load();
    char line[96];
    std::snprintf(line, sizeof(line), " %d/s->%.0f/s", rate,
                  accepted_per_second);
    ladder_summary += line;

    // Let the admission queue drain between windows so each rate step
    // starts from an empty queue.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      auto report_fetch =
          serve::HttpFetch("127.0.0.1", port, "GET", "/report");
      if (report_fetch.ok()) {
        auto depth =
            serve::ExtractJsonNumber(report_fetch->body, "queue_depth");
        if (depth.ok() && *depth == 0.0) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  for (serve::HttpClient& client : pool) client.Close();
  server.Stop();

  // Generous floor: the acceptance bar is 10k submissions/s on a dev
  // machine; the gate only guards against an order-of-magnitude collapse
  // (e.g. keep-alive silently regressing to connection-per-request).
  constexpr double kFloorPerSecond = 2500.0;
  const double floor_shortfall =
      std::max(0.0, kFloorPerSecond - peak_accepted_per_second);

  report->AddNumber("openloop_clients", kClients);
  report->AddNumber("openloop_total_accepted",
                    static_cast<double>(total_accepted));
  report->AddNumber("openloop_peak_accepted_per_second",
                    peak_accepted_per_second);
  report->AddNumber("openloop_reconnects", static_cast<double>(reconnects));
  // The gated invariants — exact zeros.
  report->AddNumber("openloop_errors", static_cast<double>(total_errors));
  report->AddNumber("openloop_floor_shortfall", floor_shortfall);

  std::printf(
      "openloop_sweep: peak %.0f accepted/s (%lld total, %lld errors, "
      "%lld reconnects), ladder%s\n",
      peak_accepted_per_second, static_cast<long long>(total_accepted),
      static_cast<long long>(total_errors),
      static_cast<long long>(reconnects), ladder_summary.c_str());
  return true;
}

int Run(const LoadOptions& options) {
  // A mid-size city: big enough that replanning does real work, small
  // enough that the bench finishes on a laptop budget.
  gen::NycLikeConfig city_config;
  city_config.num_billboards = 300;
  city_config.num_trajectories = 10000;
  common::Rng rng(17);
  model::Dataset dataset = gen::GenerateNycLike(city_config, &rng);
  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(dataset, 100.0);

  serve::MarketServerConfig config;
  config.port = 0;
  config.num_threads = options.clients;
  config.max_batch = options.batch_max;
  config.max_batch_delay_seconds = options.batch_delay_ms / 1000.0;
  if (options.policy == "reopt") {
    config.market.policy = core::ReplanPolicy::kReoptimizeAll;
  } else if (options.policy == "incremental") {
    config.market.policy = core::ReplanPolicy::kIncremental;
  } else {
    config.market.policy = core::ReplanPolicy::kLockExisting;
  }
  config.market.solver.method = core::Method::kGGlobal;
  // Contracts churn: a short term keeps the active set (and thus replan
  // cost) bounded as thousands of submissions stream through.
  config.market.contract_duration_days = 25;

  serve::MarketServer server(&index, config);
  common::Status started = server.Start();
  if (!started.ok()) {
    MROAM_LOG(Error) << "server start failed: " << started.ToString();
    return 1;
  }
  const int port = server.port();

  // Per-submission demand/payment terms follow the paper's workload
  // shape: small individual demands against the city's supply.
  market::WorkloadConfig workload;
  workload.avg_individual_demand_ratio = 0.01;
  auto advertisers =
      market::GenerateAdvertisers(index.TotalSupply(), workload, &rng);
  if (!advertisers.ok()) {
    MROAM_LOG(Error) << advertisers.status().ToString();
    return 1;
  }

  std::atomic<int> next_submission{0};
  std::atomic<int> ok_count{0};
  std::atomic<int> error_count{0};
  std::vector<std::vector<double>> latencies_ms(
      static_cast<size_t>(options.clients));

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      latencies_ms[c].reserve(
          static_cast<size_t>(options.submissions / options.clients + 1));
      // One persistent keep-alive connection per client thread; the POST
      // and its commit polls share it.
      serve::HttpClient client;
      while (true) {
        int seq = next_submission.fetch_add(1);
        if (seq >= options.submissions) break;
        const market::Advertiser& terms =
            (*advertisers)[static_cast<size_t>(seq) % advertisers->size()];
        std::string body =
            "{\"demand\": " + std::to_string(terms.demand) +
            ", \"payment\": " + common::FormatDouble(terms.payment, 3) +
            "}";
        auto t0 = std::chrono::steady_clock::now();
        if (!client.connected() &&
            !client.Connect("127.0.0.1", port).ok()) {
          error_count.fetch_add(1);
          continue;
        }
        auto response = client.Fetch("POST", "/contracts", body);
        if (!response.ok() || response->status != 202) {
          error_count.fetch_add(1);
          continue;
        }
        auto ticket = serve::ExtractJsonNumber(response->body, "ticket");
        if (!ticket.ok()) {
          error_count.fetch_add(1);
          continue;
        }
        // A submission completes when its group commit publishes the
        // outcome: poll the ticket on the same connection until the
        // status flips to committed. Latency is POST to committed.
        const std::string ticket_path =
            "/tickets/" + std::to_string(static_cast<int64_t>(*ticket));
        bool committed = false;
        for (int poll = 0; poll < 20000 && !committed; ++poll) {
          if (!client.connected() &&
              !client.Connect("127.0.0.1", port).ok()) {
            break;
          }
          auto status = client.Fetch("GET", ticket_path);
          if (!status.ok() || status->status != 200) break;
          committed =
              status->body.find("\"status\":\"committed\"") !=
              std::string::npos;
          if (!committed) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
        auto t1 = std::chrono::steady_clock::now();
        if (committed) {
          ok_count.fetch_add(1);
          latencies_ms[c].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        } else {
          error_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  server.Stop();

  std::vector<double> all;
  for (const auto& per_client : latencies_ms) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  double sum = 0.0;
  for (double v : all) sum += v;

  ReportWriter report("serve");
  report.SetDataset(dataset, index);
  report.AddNote("policy", options.policy);
  report.AddNumber("clients", options.clients);
  report.AddNumber("batch_max", options.batch_max);
  report.AddNumber("batch_delay_ms", options.batch_delay_ms);
  report.AddNumber("submissions", options.submissions);
  report.AddNumber("submissions_ok", ok_count.load());
  report.AddNumber("submissions_failed", error_count.load());
  report.AddNumber("wall_seconds", wall_seconds);
  report.AddNumber("throughput_per_second",
                   static_cast<double>(ok_count.load()) / wall_seconds);
  report.AddNumber("batches_flushed",
                   static_cast<double>(server.batches_flushed()));
  report.AddNumber("latency_ms_mean",
                   all.empty() ? 0.0 : sum / static_cast<double>(all.size()));
  report.AddNumber("latency_ms_p50", Percentile(all, 0.50));
  report.AddNumber("latency_ms_p95", Percentile(all, 0.95));
  report.AddNumber("latency_ms_p99", Percentile(all, 0.99));
  report.AddNumber("latency_ms_max", all.empty() ? 0.0 : all.back());

  // Per-stage latency percentiles, estimated from the server's stage
  // histograms (the ticket-lifecycle instrumentation in MarketServer):
  // where a submission's wall time went — admission-queue wait, the
  // batch replan, and the post-replan group-commit respond leg.
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  struct StageLine {
    const char* key;     // field prefix in the report
    const char* metric;  // histogram name in the registry
  };
  const StageLine stages[] = {
      {"stage_queue_wait", "serve.stage.queue_wait_seconds"},
      {"stage_replan", "serve.stage.replan_seconds"},
      {"stage_respond", "serve.stage.respond_seconds"},
      {"stage_read", "serve.stage.read_seconds"},
  };
  std::string stage_summary;
  for (const StageLine& stage : stages) {
    const obs::MetricsSnapshot::HistogramValue* h =
        metrics.FindHistogram(stage.metric);
    const double p50 = h ? h->Quantile(0.50) * 1e3 : 0.0;
    const double p95 = h ? h->Quantile(0.95) * 1e3 : 0.0;
    const double p99 = h ? h->Quantile(0.99) * 1e3 : 0.0;
    report.AddNumber(std::string(stage.key) + "_ms_p50", p50);
    report.AddNumber(std::string(stage.key) + "_ms_p95", p95);
    report.AddNumber(std::string(stage.key) + "_ms_p99", p99);
    report.AddNumber(std::string(stage.key) + "_count",
                     h ? static_cast<double>(h->count) : 0.0);
    char line[160];
    std::snprintf(line, sizeof(line),
                  " %s p50 %.2fms p95 %.2fms p99 %.2fms (n=%lld)",
                  stage.key, p50, p95, p99,
                  static_cast<long long>(h ? h->count : 0));
    stage_summary += line;
  }
  std::printf("serve_load stages:%s\n", stage_summary.c_str());

  // The overload sweep runs AFTER the stage snapshot above: its parked
  // submissions spend the whole sweep in the admission queue, which
  // would otherwise poison the gated queue-wait percentiles.
  if (!options.skip_overload && !RunOverloadSweep(index, &report)) {
    return 1;
  }

  // Open-loop arrival-rate sweep: peak accepted submission rate over a
  // keep-alive client pool (also after the stage snapshot).
  if (!options.skip_openloop && !RunOpenLoopSweep(index, &report)) {
    return 1;
  }

  // Deterministic replan comparison over a shared churn schedule.
  if (!options.skip_compare && !RunReplanCompare(index, &report)) {
    return 1;
  }

  std::printf(
      "serve_load: %d ok / %d failed in %.2fs (%.0f/s), "
      "p50 %.2fms p95 %.2fms p99 %.2fms over %lld batches\n",
      ok_count.load(), error_count.load(), wall_seconds,
      static_cast<double>(ok_count.load()) / wall_seconds,
      Percentile(all, 0.50), Percentile(all, 0.95), Percentile(all, 0.99),
      static_cast<long long>(server.batches_flushed()));
  common::Status written = report.Write();
  if (!written.ok()) {
    MROAM_LOG(Error) << written.ToString();
    return 1;
  }
  // Sanity floor: the acceptance bar is >= 1k completed submissions.
  if (ok_count.load() < options.submissions) {
    MROAM_LOG(Error) << "dropped submissions: only " << ok_count.load()
                     << " of " << options.submissions << " succeeded";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mroam::bench

int main(int argc, char** argv) {
  mroam::bench::LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--submissions") {
      options.submissions = std::atoi(next());
    } else if (arg == "--clients") {
      options.clients = std::atoi(next());
    } else if (arg == "--policy") {
      options.policy = next();
    } else if (arg == "--batch-max") {
      options.batch_max = std::atoi(next());
    } else if (arg == "--batch-delay-ms") {
      options.batch_delay_ms = std::atof(next());
    } else if (arg == "--skip-compare") {
      options.skip_compare = true;
    } else if (arg == "--skip-overload") {
      options.skip_overload = true;
    } else if (arg == "--skip-openloop") {
      options.skip_openloop = true;
    } else {
      std::fprintf(stderr,
                   "usage: serve_load [--submissions N] [--clients N] "
                   "[--policy lock|reopt|incremental] [--batch-max N] "
                   "[--batch-delay-ms F] [--skip-compare] "
                   "[--skip-overload] [--skip-openloop]\n");
      return 2;
    }
  }
  if (options.submissions < 1 || options.clients < 1) {
    std::fprintf(stderr, "submissions and clients must be positive\n");
    return 2;
  }
  return mroam::bench::Run(options);
}
