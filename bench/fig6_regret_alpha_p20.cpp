// Figure 6: regret vs demand-supply ratio alpha at p = 20% (|A| = 5 huge
// advertisers), NYC.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsAlpha(mroam::bench::City::kNyc, 0.20, "Figure 6", "fig6_regret_alpha_p20");
  return 0;
}
