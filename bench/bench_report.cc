#include "bench_report.h"

#include <fstream>
#include <iostream>

#include "obs/metrics.h"

namespace mroam::bench {

using common::Status;
using obs::internal::AppendJsonString;
using obs::internal::JsonDouble;

ReportWriter::ReportWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)),
      path_("BENCH_" + bench_name_ + ".json") {}

void ReportWriter::SetDataset(const model::Dataset& dataset,
                              const influence::InfluenceIndex& index) {
  model::DatasetStats stats = model::ComputeStats(dataset);
  std::string json = "{\"name\":";
  AppendJsonString(&json, dataset.name);
  json += ",\"trajectories\":" + std::to_string(stats.num_trajectories) +
          ",\"billboards\":" + std::to_string(stats.num_billboards) +
          ",\"lambda\":" + JsonDouble(index.lambda()) +
          ",\"supply\":" + std::to_string(index.TotalSupply()) + "}";
  AddRaw("dataset", std::move(json));
}

void ReportWriter::AddNote(const std::string& key, const std::string& value) {
  std::string json;
  AppendJsonString(&json, value);
  AddRaw(key, std::move(json));
}

void ReportWriter::AddNumber(const std::string& key, double value) {
  AddRaw(key, JsonDouble(value));
}

void ReportWriter::AddSeries(
    const std::string& key, const std::vector<eval::ExperimentPoint>& points) {
  AddRaw(key, eval::ExperimentSeriesToJson(points));
}

void ReportWriter::AddRunReport(const std::string& key,
                                const obs::RunReport& report) {
  AddRaw(key, report.ToJson());
}

void ReportWriter::AddRaw(const std::string& key, std::string json) {
  fields_.emplace_back(key, std::move(json));
}

std::string ReportWriter::ToJson() const {
  std::string out = "{\"bench\":";
  AppendJsonString(&out, bench_name_);
  for (const auto& [key, value] : fields_) {
    out += ",\n";
    AppendJsonString(&out, key);
    out.push_back(':');
    out += value;
  }
  out += "\n}\n";
  return out;
}

Status ReportWriter::Write() const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path_);
  out << ToJson();
  if (!out) return Status::IoError("short write to " + path_);
  std::cout << "wrote " << path_ << "\n";
  return Status::Ok();
}

}  // namespace mroam::bench
