// Figure 8: running time of the four methods as the demand-supply ratio
// alpha grows, on both cities. (The paper reports the average of five
// runs; we report one deterministic run and note the seed.)
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::ReportWriter report("fig8_efficiency_alpha");
  report.AddNote("figure", "Figure 8");

  std::cout << "### Figure 8: running time vs alpha (p=5%, gamma=0.5)\n\n";
  for (bench::City city : {bench::City::kNyc, bench::City::kSg}) {
    model::Dataset dataset = bench::MakeCity(city, scale);
    influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
    eval::ExperimentConfig config = bench::DefaultExperimentConfig();

    eval::TablePrinter table(
        {"alpha", "G-Order (s)", "G-Global (s)", "ALS (s)", "BLS (s)"});
    std::vector<eval::ExperimentPoint> points;
    for (double alpha : {0.4, 0.6, 0.8, 1.0, 1.2}) {
      config.workload.alpha = alpha;
      auto point = eval::RunExperimentPoint(
          index, config, "alpha=" + common::FormatDouble(alpha, 1));
      if (!point.ok()) {
        std::cerr << "point failed: " << point.status() << "\n";
        continue;
      }
      std::vector<std::string> row{common::FormatDouble(alpha * 100, 0) + "%"};
      for (const eval::MethodResult& r : point->results) {
        row.push_back(common::FormatDouble(r.seconds, 3));
      }
      table.AddRow(std::move(row));
      points.push_back(std::move(point).value());
    }
    std::cout << dataset.name << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
    report.AddSeries(dataset.name, points);
  }
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
