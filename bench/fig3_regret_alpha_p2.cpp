// Figure 3: regret vs demand-supply ratio alpha at p = 2% (|A| = 50), NYC.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsAlpha(mroam::bench::City::kNyc, 0.02, "Figure 3", "fig3_regret_alpha_p2");
  return 0;
}
