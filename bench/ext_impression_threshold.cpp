// Extension experiment (not in the paper's evaluation): the impression-
// count influence measure of [29], which §3.1 notes is an orthogonal
// measurement choice. A trajectory counts toward an advertiser only after
// meeting m of its billboards. We hold the contract book fixed (demands
// derived from the m=1 supply) and raise m: influence gets harder to
// accumulate, so the unsatisfied penalty grows and the methods separate.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  model::Dataset dataset = bench::MakeCity(bench::City::kNyc, scale);
  influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
  bench::PrintBanner(
      "Extension: impression-count threshold m (NYC-like, fixed contracts)",
      dataset, index);

  bench::ReportWriter report("ext_impression_threshold");
  report.SetDataset(dataset, index);
  std::vector<eval::ExperimentPoint> points;
  eval::TablePrinter table({"m", "method", "regret", "excess%", "unsat%",
                            "satisfied", "time_s"});
  for (uint16_t m : {uint16_t{1}, uint16_t{2}, uint16_t{3}}) {
    eval::ExperimentConfig config = bench::DefaultExperimentConfig();
    config.impression_threshold = m;
    auto point = eval::RunExperimentPoint(index, config,
                                          "m=" + std::to_string(m));
    if (!point.ok()) {
      std::cerr << "point failed: " << point.status() << "\n";
      continue;
    }
    for (const eval::MethodResult& r : point->results) {
      table.AddRow({std::to_string(m), core::MethodName(r.method),
                    common::FormatDouble(r.breakdown.total, 1),
                    common::FormatDouble(r.breakdown.ExcessivePercent(), 1),
                    common::FormatDouble(r.breakdown.UnsatisfiedPercent(), 1),
                    std::to_string(r.breakdown.satisfied_count) + "/" +
                        std::to_string(r.breakdown.advertiser_count),
                    common::FormatDouble(r.seconds, 3)});
    }
    points.push_back(std::move(point).value());
  }
  table.Print(std::cout);
  std::cout << "\nDemands are sized against the m=1 supply, so rows are\n"
               "comparable: higher m makes the same contracts harder to\n"
               "fill and shifts regret into the unsatisfied penalty.\n";
  report.AddSeries("points", points);
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
