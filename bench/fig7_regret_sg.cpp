// Figure 7: regret on the SG dataset under the default settings (p = 5%),
// varying the demand-supply ratio alpha.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsAlpha(mroam::bench::City::kSg, 0.05, "Figure 7", "fig7_regret_sg");
  return 0;
}
