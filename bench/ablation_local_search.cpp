// Ablation study of the local-search design choices (DESIGN.md §3):
//   (a) randomized restarts (Algorithm 3) vs a single deterministic start;
//   (b) the improvement ratio r of Definition 6.1;
//   (c) the exchange-candidate sampling cap (our efficiency knob).
// All runs use BLS on the NYC-like city at the Table 6 defaults.
#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/local_search.h"
#include "eval/table_printer.h"
#include "market/workload.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  model::Dataset dataset = bench::MakeCity(bench::City::kNyc, scale);
  influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
  bench::PrintBanner("Ablation: local-search knobs (BLS, NYC-like)", dataset,
                     index);

  market::WorkloadConfig workload;  // Table 6 defaults
  common::Rng workload_rng(7);
  auto ads_or =
      market::GenerateAdvertisers(index.TotalSupply(), workload,
                                  &workload_rng);
  if (!ads_or.ok()) {
    std::cerr << ads_or.status() << "\n";
    return 1;
  }
  const std::vector<market::Advertiser> ads = std::move(ads_or).value();

  struct Variant {
    std::string name;
    core::LocalSearchConfig config;
  };
  core::LocalSearchConfig base;
  base.restarts = 2;
  base.max_sweeps = 4;
  base.max_exchange_candidates = 300;

  std::vector<Variant> variants;
  {
    Variant v{"baseline (2 restarts, r=0, cap=300)", base};
    variants.push_back(v);
  }
  {
    Variant v{"no restarts (greedy start only)", base};
    v.config.restarts = 0;
    variants.push_back(v);
  }
  {
    Variant v{"4 restarts", base};
    v.config.restarts = 4;
    variants.push_back(v);
  }
  {
    Variant v{"improvement ratio r=0.01", base};
    v.config.improvement_ratio = 0.01;
    variants.push_back(v);
  }
  {
    Variant v{"exchange cap 50 (aggressive sampling)", base};
    v.config.max_exchange_candidates = 50;
    variants.push_back(v);
  }
  {
    Variant v{"exchange cap 2000 (near-exhaustive)", base};
    v.config.max_exchange_candidates = 2000;
    variants.push_back(v);
  }
  {
    Variant v{"best-improvement exchanges", base};
    v.config.best_improvement = true;
    variants.push_back(v);
  }

  eval::TablePrinter table({"variant", "regret", "satisfied", "moves",
                            "deltas", "time_s"});
  for (const Variant& v : variants) {
    common::Stopwatch watch;
    common::Rng rng(42);
    core::LocalSearchStats stats;
    core::Assignment best = core::RandomizedLocalSearch(
        index, ads, core::RegretParams{0.5},
        core::SearchStrategy::kBillboardDriven, v.config, &rng, &stats);
    core::RegretBreakdown b = best.Breakdown();
    table.AddRow({v.name, common::FormatDouble(b.total, 1),
                  std::to_string(b.satisfied_count) + "/" +
                      std::to_string(b.advertiser_count),
                  std::to_string(stats.moves_applied),
                  std::to_string(stats.deltas_evaluated),
                  common::FormatDouble(watch.ElapsedSeconds(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nALS vs BLS head-to-head at the same budget:\n";
  eval::TablePrinter duel({"strategy", "regret", "time_s"});
  for (core::SearchStrategy strategy :
       {core::SearchStrategy::kAdvertiserDriven,
        core::SearchStrategy::kBillboardDriven}) {
    common::Stopwatch watch;
    common::Rng rng(42);
    core::Assignment best = core::RandomizedLocalSearch(
        index, ads, core::RegretParams{0.5}, strategy, base, &rng);
    duel.AddRow({strategy == core::SearchStrategy::kAdvertiserDriven
                     ? "ALS"
                     : "BLS",
                 common::FormatDouble(best.TotalRegret(), 1),
                 common::FormatDouble(watch.ElapsedSeconds(), 3)});
  }
  duel.Print(std::cout);
  return 0;
}
