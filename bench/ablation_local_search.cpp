// Ablation study of the local-search design choices (DESIGN.md §3):
//   (a) randomized restarts (Algorithm 3) vs a single deterministic start;
//   (b) the improvement ratio r of Definition 6.1;
//   (c) the exchange-candidate sampling cap (our efficiency knob).
// All runs use BLS on the NYC-like city at the Table 6 defaults. Timing
// comes from the solver's own telemetry (SolveResult::report) rather than
// ad-hoc stopwatches, so the table and BENCH_ablation_local_search.json
// agree by construction.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "core/solver.h"
#include "eval/table_printer.h"
#include "market/workload.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  model::Dataset dataset = bench::MakeCity(bench::City::kNyc, scale);
  influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
  bench::PrintBanner("Ablation: local-search knobs (BLS, NYC-like)", dataset,
                     index);

  market::WorkloadConfig workload;  // Table 6 defaults
  common::Rng workload_rng(7);
  auto ads_or =
      market::GenerateAdvertisers(index.TotalSupply(), workload,
                                  &workload_rng);
  if (!ads_or.ok()) {
    std::cerr << ads_or.status() << "\n";
    return 1;
  }
  const std::vector<market::Advertiser> ads = std::move(ads_or).value();

  struct Variant {
    std::string name;
    core::LocalSearchConfig config;
  };
  core::LocalSearchConfig base;
  base.restarts = 2;
  base.max_sweeps = 4;
  base.max_exchange_candidates = 300;

  std::vector<Variant> variants;
  {
    Variant v{"baseline (2 restarts, r=0, cap=300)", base};
    variants.push_back(v);
  }
  {
    Variant v{"no restarts (greedy start only)", base};
    v.config.restarts = 0;
    variants.push_back(v);
  }
  {
    Variant v{"4 restarts", base};
    v.config.restarts = 4;
    variants.push_back(v);
  }
  {
    Variant v{"improvement ratio r=0.01", base};
    v.config.improvement_ratio = 0.01;
    variants.push_back(v);
  }
  {
    Variant v{"exchange cap 50 (aggressive sampling)", base};
    v.config.max_exchange_candidates = 50;
    variants.push_back(v);
  }
  {
    Variant v{"exchange cap 2000 (near-exhaustive)", base};
    v.config.max_exchange_candidates = 2000;
    variants.push_back(v);
  }
  {
    Variant v{"best-improvement exchanges", base};
    v.config.best_improvement = true;
    variants.push_back(v);
  }

  bench::ReportWriter report("ablation_local_search");
  report.SetDataset(dataset, index);

  auto solve_variant = [&](core::Method method,
                           const core::LocalSearchConfig& config) {
    core::SolverConfig solver;
    solver.method = method;
    solver.regret = core::RegretParams{0.5};
    solver.local_search = config;
    solver.seed = 42;
    return core::Solve(index, ads, solver);
  };

  eval::TablePrinter table({"variant", "regret", "satisfied", "moves",
                            "deltas", "search_s", "time_s"});
  std::string variants_json = "[";
  for (size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    core::SolveResult result = solve_variant(core::Method::kBls, v.config);
    const core::RegretBreakdown& b = result.breakdown;
    table.AddRow({v.name, common::FormatDouble(b.total, 1),
                  std::to_string(b.satisfied_count) + "/" +
                      std::to_string(b.advertiser_count),
                  std::to_string(result.search_stats.moves_applied),
                  std::to_string(result.search_stats.deltas_evaluated),
                  common::FormatDouble(
                      result.report.PhaseSeconds("restarts.search"), 3),
                  common::FormatDouble(result.seconds, 3)});
    if (i > 0) variants_json.push_back(',');
    result.report.label = v.name;
    variants_json.push_back('\n');
    variants_json += result.report.ToJson();
  }
  variants_json += "\n]";
  report.AddRaw("variants", std::move(variants_json));
  table.Print(std::cout);

  std::cout << "\nALS vs BLS head-to-head at the same budget:\n";
  eval::TablePrinter duel({"strategy", "regret", "time_s"});
  for (core::Method method : {core::Method::kAls, core::Method::kBls}) {
    core::SolveResult result = solve_variant(method, base);
    duel.AddRow({core::MethodName(method),
                 common::FormatDouble(result.breakdown.total, 1),
                 common::FormatDouble(result.seconds, 3)});
    report.AddRunReport(std::string("duel_") + core::MethodName(method),
                        result.report);
  }
  duel.Print(std::cout);

  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
