// Figure 1: (a) billboard influence distribution (descending, normalized
// by the max) and (b) impression counts achieved by the top x% of
// billboards — for both cities. These are the dataset properties the
// paper's §7.2 narrative rests on: NYC heavy-tailed and overlapping, SG
// uniform with low overlap.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"
#include "influence/reports.h"

namespace {

std::string JsonArray(const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += mroam::obs::internal::JsonDouble(values[i]);
  }
  out.push_back(']');
  return out;
}

}  // namespace

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::ReportWriter report("fig1_influence_distribution");
  report.AddNote("figure", "Figure 1");

  std::cout << "### Figure 1: influence distributions\n\n";

  std::vector<double> rank_pcts{1, 5, 10, 20, 40, 60, 80, 100};
  std::vector<double> sel_pcts{5, 10, 20, 30, 50, 70, 90, 100};

  eval::TablePrinter fig1a({"billboard rank (top %)", "NYC-like I/Imax",
                            "SG-like I/Imax"});
  eval::TablePrinter fig1b({"billboards selected (%)",
                            "NYC-like impressions/|T|",
                            "SG-like impressions/|T|"});

  std::vector<std::vector<double>> dist(2), curve(2);
  for (int c = 0; c < 2; ++c) {
    bench::City city = c == 0 ? bench::City::kNyc : bench::City::kSg;
    model::Dataset dataset = bench::MakeCity(city, scale);
    influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
    std::vector<double> full = influence::InfluenceDistribution(index);
    for (double pct : rank_pcts) {
      size_t idx = std::min(
          full.size() - 1,
          static_cast<size_t>(pct / 100.0 *
                              static_cast<double>(full.size())));
      dist[c].push_back(full[idx]);
    }
    curve[c] = influence::ImpressionCurve(index, sel_pcts);

    influence::InfluenceSummary summary =
        influence::SummarizeInfluence(index);
    std::cout << dataset.name << ": mean influence "
              << common::FormatDouble(summary.mean, 1) << ", max "
              << summary.max << ", top-decile supply share "
              << common::FormatDouble(summary.top_decile_share * 100, 1)
              << "%\n";
    report.AddRaw(dataset.name,
                  "{\"rank_influence\":" + JsonArray(dist[c]) +
                      ",\"impression_curve\":" + JsonArray(curve[c]) + "}");
  }
  std::cout << "\n";
  report.AddRaw("rank_pcts", JsonArray(rank_pcts));
  report.AddRaw("sel_pcts", JsonArray(sel_pcts));

  for (size_t i = 0; i < rank_pcts.size(); ++i) {
    fig1a.AddRow({common::FormatDouble(rank_pcts[i], 0) + "%",
                  common::FormatDouble(dist[0][i], 3),
                  common::FormatDouble(dist[1][i], 3)});
  }
  std::cout << "Figure 1a: influence of the billboard at each rank\n";
  fig1a.Print(std::cout);
  std::cout << "\n";

  for (size_t i = 0; i < sel_pcts.size(); ++i) {
    fig1b.AddRow({common::FormatDouble(sel_pcts[i], 0) + "%",
                  common::FormatDouble(curve[0][i], 3),
                  common::FormatDouble(curve[1][i], 3)});
  }
  std::cout << "Figure 1b: impression count of the top-x% billboard set\n";
  fig1b.Print(std::cout);
  std::cout << "\n(NYC-like rises slower than SG-like: its top billboards "
               "overlap heavily.)\n";
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
