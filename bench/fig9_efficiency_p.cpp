// Figure 9: running time of the four methods as the average-individual
// demand ratio p varies (alpha = 100%), on both cities.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::ReportWriter report("fig9_efficiency_p");
  report.AddNote("figure", "Figure 9");

  std::cout << "### Figure 9: running time vs p (alpha=100%, gamma=0.5)\n\n";
  for (bench::City city : {bench::City::kNyc, bench::City::kSg}) {
    model::Dataset dataset = bench::MakeCity(city, scale);
    influence::InfluenceIndex index = bench::MakeIndex(dataset, 100.0);
    eval::ExperimentConfig config = bench::DefaultExperimentConfig();

    eval::TablePrinter table(
        {"p", "|A|", "G-Order (s)", "G-Global (s)", "ALS (s)", "BLS (s)"});
    std::vector<eval::ExperimentPoint> points;
    for (double p : {0.01, 0.02, 0.05, 0.10, 0.20}) {
      config.workload.avg_individual_demand_ratio = p;
      auto point = eval::RunExperimentPoint(
          index, config, "p=" + common::FormatDouble(p, 2));
      if (!point.ok()) {
        std::cerr << "point failed: " << point.status() << "\n";
        continue;
      }
      std::vector<std::string> row{
          common::FormatDouble(p * 100, 0) + "%",
          std::to_string(point->num_advertisers)};
      for (const eval::MethodResult& r : point->results) {
        row.push_back(common::FormatDouble(r.seconds, 3));
      }
      table.AddRow(std::move(row));
      points.push_back(std::move(point).value());
    }
    std::cout << dataset.name << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
    report.AddSeries(dataset.name, points);
  }
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
