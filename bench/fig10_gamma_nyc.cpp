// Figure 10: impact of the unsatisfied penalty ratio gamma, NYC.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsGamma(mroam::bench::City::kNyc, "Figure 10", "fig10_gamma_nyc");
  return 0;
}
