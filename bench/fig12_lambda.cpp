// Figure 12: impact of the influence range lambda on both cities. The
// index (and thus the supply I*) is rebuilt per lambda; demands scale with
// the supply (alpha and p fixed at their defaults), so the paper's
// proportional-regret effect appears on NYC while SG stays flat until
// lambda reaches the inter-stop/intersection scale.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::ReportWriter report("fig12_lambda");
  report.AddNote("figure", "Figure 12");

  std::cout << "### Figure 12: regret vs lambda (alpha=100%, p=5%, "
               "gamma=0.5)\n\n";
  for (bench::City city : {bench::City::kNyc, bench::City::kSg}) {
    model::Dataset dataset = bench::MakeCity(city, scale);
    std::vector<eval::ExperimentPoint> points;
    for (double lambda : {50.0, 100.0, 150.0, 200.0}) {
      influence::InfluenceIndex index = bench::MakeIndex(dataset, lambda);
      eval::ExperimentConfig config = bench::DefaultExperimentConfig();
      auto point = eval::RunExperimentPoint(
          index, config,
          "lambda=" + common::FormatDouble(lambda, 0) + "m (I*=" +
              common::FormatWithCommas(index.TotalSupply()) + ")");
      if (!point.ok()) {
        std::cerr << "point failed: " << point.status() << "\n";
        continue;
      }
      points.push_back(std::move(point).value());
    }
    eval::PrintExperimentSeries(
        std::cout, std::string("Figure 12 — ") + dataset.name, points);
    report.AddSeries(dataset.name, points);
  }
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
