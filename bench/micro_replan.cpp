// google-benchmark micro-benchmarks of the daily-market replanners: the
// same deterministic churn schedule (arrivals, expiries, cancellations)
// driven through a full per-day re-solve and the incremental warm-start
// replanner. The timed loop is the day loop; the counters are the
// replanner's deterministic work measures (boards touched per day,
// fallback rate, advertisers re-optimized per day), which the
// check_replan_regression ctest entry gates against a committed baseline.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/daily_market.h"
#include "market/workload.h"
#include "micro_main.h"

namespace {

using namespace mroam;  // NOLINT: harness brevity

constexpr int kDays = 12;
constexpr int kPerDay = 3;

struct Fixture {
  model::Dataset dataset;
  influence::InfluenceIndex index;
  std::vector<market::Advertiser> arrivals;

  Fixture()
      : dataset([] {
          gen::NycLikeConfig config;
          config.num_billboards = 300;
          config.num_trajectories = 3000;
          common::Rng rng(1);
          return gen::GenerateNycLike(config, &rng);
        }()),
        index(influence::InfluenceIndex::Build(dataset, 100.0)) {
    market::WorkloadConfig workload;
    workload.avg_individual_demand_ratio = 0.01;
    workload.alpha = workload.avg_individual_demand_ratio *
                     static_cast<double>(kDays * kPerDay);
    common::Rng rng(7);
    arrivals = market::GenerateAdvertisers(index.TotalSupply(), workload,
                                           &rng)
                   .value();
  }
};

Fixture& TheFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

struct ScheduleTotals {
  double boards_touched = 0.0;
  double fallbacks = 0.0;
  double reoptimized = 0.0;
  double final_regret = 0.0;
};

/// One full pass over the fixed churn schedule: kDays days of kPerDay
/// arrivals each, a 5-day contract term (so expiry churn starts on day 6),
/// and one early-ticket cancellation every third day.
ScheduleTotals DriveSchedule(core::ReplanPolicy policy) {
  Fixture& f = TheFixture();
  core::DailyMarketConfig config;
  config.solver.method = core::Method::kGGlobal;
  config.contract_duration_days = 5;
  config.policy = policy;
  core::DailyMarket market(&f.index, config);

  ScheduleTotals totals;
  size_t next = 0;
  for (int day = 1; day <= kDays; ++day) {
    if (day >= 4 && day % 3 == 1) {
      market.Cancel(static_cast<int64_t>(day) - 3);
    }
    std::vector<market::Advertiser> batch;
    for (int k = 0; k < kPerDay && next < f.arrivals.size(); ++k) {
      batch.push_back(f.arrivals[next++]);
    }
    core::DayResult result = market.AdvanceDay(std::move(batch));
    totals.boards_touched += static_cast<double>(result.boards_touched);
    totals.reoptimized +=
        static_cast<double>(result.reoptimized_advertisers);
    if (result.full_solve_fallback) totals.fallbacks += 1.0;
    totals.final_regret = result.breakdown.total;
  }
  return totals;
}

void RunReplanBench(benchmark::State& state, core::ReplanPolicy policy) {
  ScheduleTotals accumulated;
  for (auto _ : state) {
    ScheduleTotals totals = DriveSchedule(policy);
    benchmark::DoNotOptimize(totals.final_regret);
    accumulated.boards_touched += totals.boards_touched;
    accumulated.fallbacks += totals.fallbacks;
    accumulated.reoptimized += totals.reoptimized;
    accumulated.final_regret = totals.final_regret;
  }
  const auto per_iteration = benchmark::Counter::kAvgIterations;
  state.counters["replan.boards_touched_per_day"] = benchmark::Counter(
      accumulated.boards_touched / kDays, per_iteration);
  state.counters["replan.fallback_rate"] = benchmark::Counter(
      accumulated.fallbacks / kDays, per_iteration);
  state.counters["replan.reoptimized_per_day"] = benchmark::Counter(
      accumulated.reoptimized / kDays, per_iteration);
}

void BM_DailyReplanFull(benchmark::State& state) {
  RunReplanBench(state, core::ReplanPolicy::kReoptimizeAll);
}
BENCHMARK(BM_DailyReplanFull)->Unit(benchmark::kMillisecond);

void BM_DailyReplanIncremental(benchmark::State& state) {
  RunReplanBench(state, core::ReplanPolicy::kIncremental);
}
BENCHMARK(BM_DailyReplanIncremental)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mroam::bench::RunMicroBenchmarkMain(argc, argv, "micro_replan");
}
