#ifndef MROAM_BENCH_BENCH_REPORT_H_
#define MROAM_BENCH_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "eval/experiment.h"
#include "influence/influence_index.h"
#include "model/dataset.h"
#include "obs/run_report.h"

namespace mroam::bench {

/// Assembles one bench binary's machine-readable output and writes it as
/// `BENCH_<name>.json` in the working directory: banner metadata (dataset,
/// scale, thread count) plus whatever series, run reports, and scalars the
/// bench adds. Every bench emits through this class so downstream tooling
/// can diff runs across PRs without scraping stdout.
class ReportWriter {
 public:
  /// `bench_name` is the file slug: output goes to BENCH_<bench_name>.json.
  explicit ReportWriter(std::string bench_name);

  /// Records the standard banner metadata block under "dataset".
  void SetDataset(const model::Dataset& dataset,
                  const influence::InfluenceIndex& index);

  /// Adds a free-form string field.
  void AddNote(const std::string& key, const std::string& value);

  /// Adds a numeric field.
  void AddNumber(const std::string& key, double value);

  /// Adds an experiment series (the JSON twin of one printed table).
  void AddSeries(const std::string& key,
                 const std::vector<eval::ExperimentPoint>& points);

  /// Adds one solver run's telemetry.
  void AddRunReport(const std::string& key, const obs::RunReport& report);

  /// Adds a field whose value is already-serialized JSON (caller's
  /// responsibility that it is valid).
  void AddRaw(const std::string& key, std::string json);

  /// Serializes every field added so far into one JSON object.
  std::string ToJson() const;

  /// Writes ToJson() to path(). Also prints the path to stdout so the
  /// operator sees where the data went.
  common::Status Write() const;

  const std::string& path() const { return path_; }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON
};

}  // namespace mroam::bench

#endif  // MROAM_BENCH_BENCH_REPORT_H_
