// Figure 11: impact of the unsatisfied penalty ratio gamma, SG.
#include "bench_common.h"

int main() {
  mroam::bench::RunRegretVsGamma(mroam::bench::City::kSg, "Figure 11", "fig11_gamma_sg");
  return 0;
}
