// Extension experiment (ours): digital billboards sold per time slot
// (paper §3.2: "we treat each digital billboard as multiple billboards,
// one for a certain time slot"). Splitting the day into finer windows
// multiplies the sellable inventory into smaller-influence units, which
// lets the solvers pack demands more exactly — excess influence shrinks —
// at the cost of a larger assignment problem.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "common/strings.h"
#include "eval/table_printer.h"
#include "temporal/time_slots.h"

int main() {
  using namespace mroam;  // NOLINT: harness brevity
  bench::BenchScale scale = bench::ScaleFromEnv();
  model::Dataset dataset = bench::MakeCity(bench::City::kNyc, scale);

  std::cout << "### Extension: digital billboards sold per time slot "
               "(NYC-like)\n\n";

  bench::ReportWriter report("ext_time_slots");
  std::vector<eval::ExperimentPoint> points;
  eval::TablePrinter table({"slots/day", "sellable units", "supply I*",
                            "method", "regret", "excess%", "unsat%",
                            "satisfied", "time_s"});
  for (int32_t k : {1, 2, 4}) {
    temporal::TemporalConfig config;
    config.slots_per_day = k;
    config.lambda = 100.0;
    temporal::TemporalMarket market =
        temporal::BuildTemporalMarket(dataset, config);

    // Table 6's p at alpha=80% — the excess-dominated regime, where
    // packing quality is visible (at alpha>=100% the unsatisfied penalty
    // of the one advertiser that cannot be served dominates the total).
    eval::ExperimentConfig experiment = bench::DefaultExperimentConfig();
    experiment.workload.alpha = 0.8;
    auto point = eval::RunExperimentPoint(market.index, experiment,
                                          "k=" + std::to_string(k));
    if (!point.ok()) {
      std::cerr << "point failed: " << point.status() << "\n";
      continue;
    }
    for (const eval::MethodResult& r : point->results) {
      table.AddRow({std::to_string(k),
                    std::to_string(market.index.num_billboards()),
                    common::FormatWithCommas(market.index.TotalSupply()),
                    core::MethodName(r.method),
                    common::FormatDouble(r.breakdown.total, 1),
                    common::FormatDouble(r.breakdown.ExcessivePercent(), 1),
                    common::FormatDouble(r.breakdown.UnsatisfiedPercent(), 1),
                    std::to_string(r.breakdown.satisfied_count) + "/" +
                        std::to_string(r.breakdown.advertiser_count),
                    common::FormatDouble(r.seconds, 3)});
    }
    points.push_back(std::move(point).value());
  }
  table.Print(std::cout);
  std::cout << "\nDemands scale with each market's own supply (alpha fixed "
               "at 80%),\nso rows compare packing quality, not market "
               "size.\n";
  report.AddSeries("points", points);
  if (auto status = report.Write(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
