#ifndef MROAM_BENCH_BENCH_COMMON_H_
#define MROAM_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"
#include "model/dataset.h"

namespace mroam::bench {

/// Which synthetic city a bench runs against.
enum class City { kNyc, kSg };

const char* CityName(City city);

/// Default bench scale (DESIGN.md §4): billboard counts match the paper's
/// Table 5 (1,462 / 4,092); trajectory counts are reduced so every bench
/// binary finishes on a single-core budget. Override the trajectory counts
/// with the MROAM_BENCH_SCALE env var (a float multiplier, e.g. "0.25" for
/// a quick smoke run or "20" to approach paper scale).
struct BenchScale {
  int32_t nyc_trajectories = 60000;
  int32_t sg_trajectories = 80000;
};

/// Reads MROAM_BENCH_SCALE and applies it to the defaults.
BenchScale ScaleFromEnv();

/// Reads MROAM_BENCH_THREADS — the `num_threads` knob the benches pass to
/// the solver (parallel ALS/BLS restarts). 1 (the default) keeps the
/// single-core budget of DESIGN.md §4; 0 means one thread per hardware
/// core; results are bit-identical for every value.
int32_t ThreadsFromEnv();

/// Generates the requested city at bench scale with a fixed seed.
model::Dataset MakeCity(City city, const BenchScale& scale);

/// Builds the influence index for `city` at distance threshold `lambda`.
influence::InfluenceIndex MakeIndex(const model::Dataset& dataset,
                                    double lambda);

/// Experiment defaults shared by every figure bench: Table 6 defaults
/// (alpha=100%, p=5%, gamma=0.5) plus bounded local-search effort
/// (restarts=2, sweeps<=4, 300 sampled exchange candidates per pair).
eval::ExperimentConfig DefaultExperimentConfig();

/// Prints the standard bench banner: dataset, scale, Table 6 defaults.
void PrintBanner(const std::string& experiment, const model::Dataset& dataset,
                 const influence::InfluenceIndex& index);

/// Shared driver for Figures 2-7: regret vs demand-supply ratio alpha at a
/// fixed average-individual demand ratio `p`. Prints the table and writes
/// BENCH_<bench_slug>.json (banner metadata + the series with per-run
/// RunReports).
void RunRegretVsAlpha(City city, double p, const std::string& figure_name,
                      const std::string& bench_slug);

/// Shared driver for Figures 10-11: regret vs unsatisfied penalty gamma.
/// Same JSON contract as RunRegretVsAlpha.
void RunRegretVsGamma(City city, const std::string& figure_name,
                      const std::string& bench_slug);

}  // namespace mroam::bench

#endif  // MROAM_BENCH_BENCH_COMMON_H_
