// NYC taxi-mode scenario: a host with roadside billboards in a dense city
// serves a mixed book of advertisers. Demonstrates the full pipeline —
// synthetic city generation, influence indexing, workload setup, all four
// methods, and the regret decomposition the host would act on.
//
// Run: ./nyc_campaign [num_trajectories]
#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "eval/experiment.h"
#include "eval/svg_export.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"
#include "influence/reports.h"
#include "market/workload.h"

namespace {
using namespace mroam;  // NOLINT: example brevity
}

int main(int argc, char** argv) {
  int32_t num_trajectories = 8000;
  if (argc > 1) {
    auto parsed = common::ParseInt64(argv[1]);
    if (!parsed.ok()) {
      std::cerr << "usage: nyc_campaign [num_trajectories]\n";
      return 1;
    }
    num_trajectories = static_cast<int32_t>(*parsed);
  }

  gen::NycLikeConfig city_config;
  city_config.num_billboards = 600;
  city_config.num_trajectories = num_trajectories;
  common::Rng rng(2024);
  model::Dataset city = gen::GenerateNycLike(city_config, &rng);
  model::DatasetStats stats = model::ComputeStats(city);
  std::cout << "Generated " << city.name << ": "
            << common::FormatWithCommas(
                   static_cast<int64_t>(stats.num_trajectories))
            << " taxi trips, " << stats.num_billboards
            << " billboards, avg trip "
            << common::FormatDouble(stats.avg_distance_km, 1) << " km\n";

  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(city, /*lambda=*/100.0);
  influence::AssignBillboardCosts(&city, index, &rng);
  influence::InfluenceSummary summary = influence::SummarizeInfluence(index);
  std::cout << "Supply I* = " << common::FormatWithCommas(index.TotalSupply())
            << "; top 10% of billboards hold "
            << common::FormatDouble(summary.top_decile_share * 100.0, 1)
            << "% of it (heavy-tailed, as in the paper's Fig 1a)\n\n";

  // A normal market day: global demand matches supply, medium advertisers.
  eval::ExperimentConfig config;
  config.workload.alpha = 1.0;
  config.workload.avg_individual_demand_ratio = 0.05;
  config.regret.gamma = 0.5;
  config.local_search.restarts = 2;
  config.local_search.max_exchange_candidates = 500;
  config.local_search.max_sweeps = 8;

  std::vector<eval::ExperimentPoint> points;
  for (double alpha : {0.6, 1.0, 1.2}) {
    config.workload.alpha = alpha;
    auto point = eval::RunExperimentPoint(
        index, config, "alpha=" + common::FormatDouble(alpha, 1));
    if (!point.ok()) {
      std::cerr << "experiment failed: " << point.status() << "\n";
      return 1;
    }
    points.push_back(std::move(point).value());
  }
  eval::PrintExperimentSeries(std::cout, "NYC-like campaign day", points);

  // Render the BLS deployment of the alpha=1.0 market as a map.
  {
    config.workload.alpha = 1.0;
    common::Rng workload_rng(config.workload_seed);
    auto ads = market::GenerateAdvertisers(index.TotalSupply(),
                                           config.workload, &workload_rng);
    if (ads.ok()) {
      core::SolverConfig solver;
      solver.method = core::Method::kBls;
      solver.regret = config.regret;
      solver.local_search = config.local_search;
      core::SolveResult plan = core::Solve(index, *ads, solver);
      const std::string svg_path = "/tmp/nyc_campaign_deployment.svg";
      if (eval::WriteDeploymentSvg(svg_path, city, plan).ok()) {
        std::cout << "Deployment map written to " << svg_path
                  << " (billboards colored by advertiser)\n\n";
      }
    }
  }

  std::cout << "Reading the table: at low alpha the regret is all excess\n"
               "influence (billboards are strong relative to demands); once\n"
               "alpha reaches 1.2 the unsatisfied penalty dominates and the\n"
               "local-search methods' careful allocation pays off.\n";
  return 0;
}
