// General applicability (paper §1): the same regret machinery provisions
// any divisible resource pool against customer demands. Here: a telecom
// infrastructure host assigns cell towers to mobile operators. Towers play
// the billboards, subscribers play the trajectories (a subscriber is
// "covered" when some assigned tower is in range), and each operator's
// contract demands a covered-subscriber count for a committed fee.
//
// Run: ./capacity_provisioning
#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "core/solver.h"
#include "influence/influence_index.h"
#include "model/dataset.h"

namespace {
using namespace mroam;  // NOLINT: example brevity

// A region with towers on a coarse grid and subscribers clustered around
// a few population centers. Each subscriber is one "trajectory" with a
// single home location; a tower within 2 km covers it.
model::Dataset BuildRegion(common::Rng* rng) {
  model::Dataset region;
  region.name = "telecom-region";
  const double size_m = 30000.0;

  int32_t id = 0;
  for (double x = 1000.0; x < size_m; x += 2500.0) {
    for (double y = 1000.0; y < size_m; y += 2500.0) {
      model::Billboard tower;
      tower.id = id++;
      tower.location = {x + rng->UniformDouble(-500, 500),
                        y + rng->UniformDouble(-500, 500)};
      region.billboards.push_back(tower);
    }
  }

  const int kCenters = 6;
  std::vector<geo::Point> centers;
  for (int c = 0; c < kCenters; ++c) {
    centers.push_back({rng->UniformDouble(4000, size_m - 4000),
                       rng->UniformDouble(4000, size_m - 4000)});
  }
  for (int32_t s = 0; s < 20000; ++s) {
    const geo::Point& center = centers[rng->UniformU64(kCenters)];
    model::Trajectory subscriber;
    subscriber.id = s;
    subscriber.points = {{center.x + rng->Normal(0.0, 2000.0),
                          center.y + rng->Normal(0.0, 2000.0)}};
    region.trajectories.push_back(std::move(subscriber));
  }
  return region;
}

}  // namespace

int main() {
  common::Rng rng(31);
  model::Dataset region = BuildRegion(&rng);
  influence::InfluenceIndex coverage =
      influence::InfluenceIndex::Build(region, /*lambda=*/2000.0);

  std::cout << "Telecom host: " << coverage.num_billboards() << " towers, "
            << common::FormatWithCommas(coverage.num_trajectories())
            << " subscribers, aggregate coverage capacity "
            << common::FormatWithCommas(coverage.TotalSupply()) << "\n\n";

  // Three operators with different footprints and fees. Demands are in
  // covered subscribers; fees are committed payments.
  std::vector<market::Advertiser> operators(3);
  operators[0] = {.id = 0, .demand = 9000, .payment = 11000.0};
  operators[1] = {.id = 1, .demand = 6000, .payment = 6500.0};
  operators[2] = {.id = 2, .demand = 3500, .payment = 3400.0};

  for (core::Method method : core::AllMethods()) {
    core::SolverConfig config;
    config.method = method;
    config.regret.gamma = 0.5;
    config.local_search.restarts = 2;
    config.local_search.max_exchange_candidates = 400;
    core::SolveResult result = core::Solve(coverage, operators, config);
    std::cout << core::MethodName(method) << ": regret "
              << common::FormatDouble(result.breakdown.total, 0) << " ("
              << common::FormatDouble(result.breakdown.ExcessivePercent(), 0)
              << "% over-provisioning, "
              << common::FormatDouble(result.breakdown.UnsatisfiedPercent(), 0)
              << "% unmet demand; " << result.breakdown.satisfied_count
              << "/3 operators served)\n";
    for (size_t op = 0; op < result.sets.size(); ++op) {
      std::cout << "    operator " << op << ": "
                << result.sets[op].size() << " towers, "
                << common::FormatWithCommas(result.influences[op]) << "/"
                << common::FormatWithCommas(operators[op].demand)
                << " subscribers\n";
    }
  }
  std::cout << "\nOver-provisioning a tower to one operator is capacity\n"
               "another operator would have paid for — exactly the\n"
               "excessive-influence regret of MROAM.\n";
  return 0;
}
