// Quickstart: the paper's running example (§1, Tables 1-4) through the
// public API. Builds the six-billboard market, evaluates the two
// hand-written strategies from the paper, and lets each solver find its
// own deployment.
//
// Run: ./quickstart
#include <iostream>

#include "core/solver.h"
#include "influence/influence_index.h"
#include "market/workload.h"
#include "model/dataset.h"

namespace {

using namespace mroam;  // NOLINT: example brevity

// Billboard influences from Table 1 (I(o_3) = 3, recovered from Tables
// 3-4). Billboards are placed far apart and each trajectory stands at the
// billboards that influence it, so the meet model reproduces the table.
model::Dataset BuildPaperDataset() {
  const int influences[6] = {2, 6, 3, 7, 1, 1};
  model::Dataset dataset;
  dataset.name = "paper-example";
  int32_t next_trajectory = 0;
  for (int i = 0; i < 6; ++i) {
    model::Billboard billboard;
    billboard.id = i;
    billboard.location = {10000.0 * i, 0.0};
    dataset.billboards.push_back(billboard);
    for (int k = 0; k < influences[i]; ++k) {
      model::Trajectory t;
      t.id = next_trajectory++;
      t.points = {billboard.location};
      dataset.trajectories.push_back(std::move(t));
    }
  }
  return dataset;
}

// Advertiser contracts from Table 2.
std::vector<market::Advertiser> BuildAdvertisers() {
  std::vector<market::Advertiser> ads(3);
  ads[0] = {.id = 0, .demand = 5, .payment = 10.0};
  ads[1] = {.id = 1, .demand = 7, .payment = 11.0};
  ads[2] = {.id = 2, .demand = 8, .payment = 20.0};
  return ads;
}

void EvaluateStrategy(
    const influence::InfluenceIndex& index,
    const std::vector<market::Advertiser>& ads, const char* name,
    const std::vector<std::vector<model::BillboardId>>& sets) {
  core::Assignment plan(&index, ads, core::RegretParams{0.5});
  for (size_t a = 0; a < sets.size(); ++a) {
    for (model::BillboardId o : sets[a]) {
      plan.Assign(o, static_cast<market::AdvertiserId>(a));
    }
  }
  std::cout << name << ": total regret = " << plan.TotalRegret() << "\n";
  for (int32_t a = 0; a < plan.num_advertisers(); ++a) {
    std::cout << "  advertiser a" << (a + 1) << ": I(S)=" << plan.InfluenceOf(a)
              << " demand=" << ads[a].demand
              << (plan.IsSatisfied(a) ? "  satisfied" : "  NOT satisfied")
              << "  regret=" << plan.RegretOf(a) << "\n";
  }
}

}  // namespace

int main() {
  model::Dataset dataset = BuildPaperDataset();
  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(dataset, /*lambda=*/1.0);
  std::vector<market::Advertiser> ads = BuildAdvertisers();

  std::cout << "MROAM quickstart: " << index.num_billboards()
            << " billboards, supply I* = " << index.TotalSupply()
            << ", 3 advertisers, global demand = "
            << market::GlobalDemand(ads) << "\n\n";

  // The two strategies of Tables 3-4 (paper ids are 1-based).
  EvaluateStrategy(index, ads, "Strategy 1 (Table 3)",
                   {{1}, {3}, {0, 2, 4, 5}});
  EvaluateStrategy(index, ads, "Strategy 2 (Table 4)",
                   {{0, 2}, {3}, {1, 4, 5}});

  // Let each method find its own deployment.
  std::cout << "\nSolver results:\n";
  for (core::Method method : core::AllMethods()) {
    core::SolverConfig config;
    config.method = method;
    core::SolveResult result = core::Solve(index, ads, config);
    std::cout << "  " << core::MethodName(method)
              << ": regret = " << result.breakdown.total << " ("
              << result.breakdown.satisfied_count << "/3 satisfied, "
              << result.seconds * 1e3 << " ms)\n";
  }
  return 0;
}
