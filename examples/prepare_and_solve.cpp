// Onboarding walkthrough for real data: take a raw TLC-style trip CSV and
// a raw billboard list (lon/lat), clean + project them with the prep
// pipeline, persist the prepared dataset, build the influence index, and
// solve a market. Since this repo ships no proprietary data, the "raw"
// files are synthesized first — swap in your own exports and adjust the
// column mappings.
//
// Run: ./prepare_and_solve [output_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/strings.h"
#include "core/solver.h"
#include "influence/influence_index.h"
#include "io/dataset_io.h"
#include "market/workload.h"
#include "prep/raw_ingest.h"

namespace {
using namespace mroam;  // NOLINT: example brevity

// Writes a fake raw trip file in (pickup_lon, pickup_lat, dropoff_lon,
// dropoff_lat, duration_s) layout, including some junk rows a real export
// would contain.
void WriteFakeRawFiles(const std::string& dir, common::Rng* rng) {
  std::ofstream trips(dir + "/raw_trips.csv");
  trips << "# fake TLC export\n";
  for (int i = 0; i < 4000; ++i) {
    double plon = -74.00 + rng->UniformDouble(0.0, 0.08);
    double plat = 40.70 + rng->UniformDouble(0.0, 0.10);
    double dlon = plon + rng->Normal(0.0, 0.015);
    double dlat = plat + rng->Normal(0.0, 0.015);
    double duration = rng->UniformDouble(180.0, 1500.0);
    trips << plon << "," << plat << "," << dlon << "," << dlat << ","
          << duration << "\n";
    if (i % 400 == 0) trips << ",,bad row,,\n";          // parse junk
    if (i % 500 == 0) trips << "-80,40.7,-73.9,40.7,60\n";  // off the map
  }
  std::ofstream boards(dir + "/raw_billboards.csv");
  for (int i = 0; i < 300; ++i) {
    boards << (-74.00 + rng->UniformDouble(0.0, 0.08)) << ","
           << (40.70 + rng->UniformDouble(0.0, 0.10)) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/mroam_prepare_demo";
  std::filesystem::create_directories(dir);
  common::Rng rng(99);
  WriteFakeRawFiles(dir, &rng);

  // 1. Clean + project the raw files.
  prep::IngestConfig config;
  config.min_lon = -74.05;
  config.max_lon = -73.85;
  config.min_lat = 40.65;
  config.max_lat = 40.85;
  config.min_trip_m = 200.0;
  config.max_trip_m = 30000.0;
  geo::Projector projector(-74.0, 40.75);

  prep::IngestStats trip_stats;
  auto trips = prep::IngestTrips(dir + "/raw_trips.csv",
                                 prep::TripColumns{}, config, projector,
                                 &trip_stats);
  if (!trips.ok()) {
    std::cerr << "trip ingest failed: " << trips.status() << "\n";
    return 1;
  }
  std::cout << "Trips: read " << trip_stats.rows_read << ", kept "
            << trip_stats.rows_kept << " (dropped " << trip_stats.dropped_parse
            << " unparseable, " << trip_stats.dropped_bounds
            << " out-of-area, " << trip_stats.dropped_length
            << " bad length)\n";

  auto dataset = prep::IngestDataset(
      dir + "/raw_trips.csv", prep::TripColumns{},
      dir + "/raw_billboards.csv", prep::BillboardColumns{}, config,
      projector, "prepared-demo");
  if (!dataset.ok()) {
    std::cerr << "ingest failed: " << dataset.status() << "\n";
    return 1;
  }

  // 2. Persist the prepared dataset (the paper-pipeline input format).
  if (auto s = io::SaveDataset(dir, *dataset); !s.ok()) {
    std::cerr << "save failed: " << s << "\n";
    return 1;
  }
  std::cout << "Prepared dataset saved to " << dir << "\n";

  // 3. Index, generate a market, solve.
  auto index = influence::InfluenceIndex::Build(*dataset, /*lambda=*/100.0);
  std::cout << "Supply I* = " << common::FormatWithCommas(index.TotalSupply())
            << " across " << index.num_billboards() << " billboards\n";

  market::WorkloadConfig workload;
  workload.alpha = 0.8;
  auto ads = market::GenerateAdvertisers(index.TotalSupply(), workload, &rng);
  if (!ads.ok()) {
    std::cerr << "workload failed: " << ads.status() << "\n";
    return 1;
  }
  core::SolverConfig solver;
  solver.method = core::Method::kBls;
  core::SolveResult result = core::Solve(index, *ads, solver);
  std::cout << "BLS on the prepared data: regret "
            << common::FormatDouble(result.breakdown.total, 1) << ", "
            << result.breakdown.satisfied_count << "/"
            << result.breakdown.advertiser_count
            << " advertisers satisfied\n";
  return 0;
}
