// SG bus-mode scenario: billboards live at bus stops and audiences are
// smart-card bus rides. Shows how the transport mode changes the regret
// profile (more uniform influence, low overlap -> less excess influence),
// and how the influence radius lambda behaves for stop-anchored audiences.
//
// Run: ./sg_bus_market
#include <iostream>

#include "common/strings.h"
#include "eval/experiment.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"
#include "influence/reports.h"

namespace {
using namespace mroam;  // NOLINT: example brevity
}

int main() {
  gen::SgLikeConfig city_config;
  city_config.num_billboards = 1200;
  city_config.num_trajectories = 10000;
  common::Rng rng(7);
  model::Dataset city = gen::GenerateSgLike(city_config, &rng);
  model::DatasetStats stats = model::ComputeStats(city);
  std::cout << "Generated " << city.name << ": "
            << common::FormatWithCommas(
                   static_cast<int64_t>(stats.num_trajectories))
            << " bus rides, " << stats.num_billboards
            << " bus-stop billboards, avg ride "
            << common::FormatDouble(stats.avg_distance_km, 1) << " km / "
            << common::FormatDouble(stats.avg_travel_time_sec, 0) << " s\n";

  // Lambda sensitivity: rides only carry points at stops, so supply
  // barely moves until lambda reaches the inter-stop scale (paper Fig 12).
  std::cout << "\nlambda sensitivity of the supply:\n";
  for (double lambda : {50.0, 100.0, 150.0, 200.0}) {
    influence::InfluenceIndex index =
        influence::InfluenceIndex::Build(city, lambda);
    std::cout << "  lambda=" << lambda << "m  I* = "
              << common::FormatWithCommas(index.TotalSupply()) << "\n";
  }

  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(city, /*lambda=*/100.0);
  influence::InfluenceSummary summary = influence::SummarizeInfluence(index);
  std::cout << "\nTop 10% of billboards hold only "
            << common::FormatDouble(summary.top_decile_share * 100.0, 1)
            << "% of the supply (more uniform than NYC, Fig 1a purple)\n\n";

  // Small vs big advertisers at full demand (the paper's Q2).
  eval::ExperimentConfig config;
  config.workload.alpha = 1.0;
  config.regret.gamma = 0.5;
  config.local_search.restarts = 2;
  config.local_search.max_exchange_candidates = 500;
  config.local_search.max_sweeps = 8;

  std::vector<eval::ExperimentPoint> points;
  for (double p : {0.02, 0.05, 0.10}) {
    config.workload.avg_individual_demand_ratio = p;
    auto point = eval::RunExperimentPoint(
        index, config, "p=" + common::FormatDouble(p * 100, 0) + "%");
    if (!point.ok()) {
      std::cerr << "experiment failed: " << point.status() << "\n";
      return 1;
    }
    points.push_back(std::move(point).value());
  }
  eval::PrintExperimentSeries(std::cout,
                              "SG-like market: advertiser size (Q2)", points);
  std::cout << "Many medium advertisers give the host flexibility; a few\n"
               "huge ones make every miss expensive (paper §7.2, Case 4).\n";
  return 0;
}
