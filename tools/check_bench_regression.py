#!/usr/bin/env python3
"""Gate on algorithmic-work regressions in the micro-benchmarks.

Compares a benchmark JSON file against a committed baseline of
per-iteration work counters. Two --current schemas are accepted:

  google-benchmark:  {"benchmarks": [{"name": ..., <counter>: ...}, ...]}
                     (BENCH_micro_algorithms.json from the
                     `micro_algorithms_bench` ctest entry,
                     BENCH_micro_replan.json from `micro_replan_bench`)
  flat ReportWriter: {"bench": "<name>", <field>: <number>, ...}
                     (BENCH_serve.json from `serve_load_bench` — the
                     bench name keys the values, top-level numeric
                     fields are the counters)

The micro-benchmark counters are seeded and workload-deterministic —
greedy.deltas counts marginal-gain recomputations, the replan.* family
measures the incremental replanner's churn response — so any increase
beyond the tolerance means the algorithm got worse (e.g. cache
invalidation broke, the blast radius exploded), not that the machine was
noisy. The serve stage latencies ARE wall-clock; their gate uses a wide
tolerance plus an absolute --slack floor so only an order-of-regression
(a blocking call on the replan path, a lost group commit) trips it —
sub-millisecond baselines would otherwise turn scheduler jitter into a
>300% relative "regression".

Baseline schemas (both accepted when checking):
  legacy, one counter:   {"counter": "greedy.deltas",
                          "values": {bench: value}}
  multi-counter:         {"counters": ["a", "b"],
                          "values": {bench: {"a": value, "b": value}}}

Either schema may additionally carry a "floors" map with the same shape
as the multi-counter "values":
  {"floors": {bench: {"c": minimum}}}
A "values" entry is a ceiling (the counter must not INCREASE past it);
a "floors" entry is a minimum (the counter must not DROP below it after
the tolerance/slack allowance) — for throughput- or ratio-style counters
where smaller means worse, e.g. the cindex decode rate and compression
ratio. Floors are hand-maintained (anchored to acceptance criteria, not
to one machine's measurement) and are left untouched by --update.

Exit codes: 0 ok, 1 regression or malformed input, 2 usage error.

Refreshing a baseline after an intentional change (repeat --counter for a
multi-counter baseline):
    python3 tools/check_bench_regression.py \
        --current build/bench/BENCH_micro_replan.json \
        --baseline bench/baselines/micro_replan_counters.json \
        --counter replan.boards_touched_per_day \
        --counter replan.fallback_rate \
        --counter replan.reoptimized_per_day \
        --update
"""

import argparse
import json
import sys

# Near-zero baselines (a fallback rate of 0) would otherwise make any
# nonzero value a >tolerance regression through rounding alone.
ABS_EPSILON = 1e-9


def load_counters(path, counters):
    """Returns {benchmark name: {counter: value}} from benchmark JSON."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_regression: cannot read {path}: {err}")
        sys.exit(1)
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        # Flat ReportWriter schema: one benchmark, named by "bench",
        # counters as top-level numeric fields.
        bench = data.get("bench")
        if not isinstance(bench, str):
            print(f"check_bench_regression: {path} has no 'benchmarks' "
                  "array and no 'bench' name")
            sys.exit(1)
        found = {c: float(data[c]) for c in counters
                 if isinstance(data.get(c), (int, float))}
        return {bench: found} if found else {}
    current = {}
    for entry in benchmarks:
        name = entry.get("name")
        if name is None:
            continue
        found = {c: float(entry[c]) for c in counters if c in entry}
        if found:
            current[name] = found
    return current


def load_baseline(path):
    """Returns (counters, ceilings, floors), each mapping
    {benchmark: {counter: value}}, from either baseline schema. The
    counters list covers every counter named by a ceiling or a floor, so
    one load_counters pass fetches them all."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_regression: cannot read {path}: {err}")
        sys.exit(1)
    values = doc.get("values")
    if not isinstance(values, dict):
        print(f"check_bench_regression: {path} has no 'values' map")
        sys.exit(1)
    floors = {
        name: {c: float(v) for c, v in entry.items()}
        for name, entry in doc.get("floors", {}).items()
    }
    if "counters" in doc:
        counters = list(doc["counters"])
        baseline = {
            name: {c: float(v) for c, v in entry.items()}
            for name, entry in values.items()
        }
    else:
        counter = doc.get("counter")
        if not isinstance(counter, str):
            print(f"check_bench_regression: {path} names no counter")
            sys.exit(1)
        counters = [counter]
        baseline = {
            name: {counter: float(v)} for name, v in values.items()
        }
    for entry in floors.values():
        for c in entry:
            if c not in counters:
                counters.append(c)
    return counters, baseline, floors


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a benchmark work counter regresses past "
        "its committed baseline.")
    parser.add_argument("--current", required=True,
                        help="google-benchmark JSON produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (see module "
                        "docstring for the accepted schemas)")
    parser.add_argument("--counter", action="append", default=None,
                        help="counter field(s) to record with --update; "
                        "repeatable (default: greedy.deltas). When "
                        "checking, the baseline file decides.")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative increase (default: 0.10)")
    parser.add_argument("--slack", type=float, default=0.0,
                        help="absolute allowance added on top of the "
                        "relative tolerance, in the counter's own units "
                        "(default: 0). Use for wall-clock counters whose "
                        "baseline is small enough that noise dominates.")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --current instead "
                        "of checking")
    args = parser.parse_args()

    if args.update:
        counters = args.counter or ["greedy.deltas"]
        current = load_counters(args.current, counters)
        if not current:
            print(f"check_bench_regression: no {counters} counters in "
                  f"{args.current}")
            sys.exit(1)
        if len(counters) == 1:
            doc = {"counter": counters[0],
                   "values": {name: entry[counters[0]]
                              for name, entry in current.items()}}
        else:
            doc = {"counters": counters, "values": current}
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"check_bench_regression: baseline {args.baseline} updated "
              f"with {len(current)} entries x {len(counters)} counters")
        return

    counters, baseline, floors = load_baseline(args.baseline)
    current = load_counters(args.current, counters)
    if not current:
        print(f"check_bench_regression: no {counters} counters in "
              f"{args.current}")
        sys.exit(1)

    failures = []
    checked = 0
    for name, expected_by_counter in sorted(baseline.items()):
        actual_by_counter = current.get(name)
        if actual_by_counter is None:
            failures.append(f"{name}: missing from {args.current}")
            continue
        for counter, expected in sorted(expected_by_counter.items()):
            actual = actual_by_counter.get(counter)
            if actual is None:
                failures.append(f"{name}: counter '{counter}' missing "
                                f"from {args.current}")
                continue
            checked += 1
            allowed = (expected * (1.0 + args.tolerance) + args.slack
                       + ABS_EPSILON)
            verdict = "ok"
            if actual > allowed:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {counter} {actual:g} exceeds baseline "
                    f"{expected:g} by more than {args.tolerance:.0%}")
            elif expected > 0 and actual < expected * (1.0 - args.tolerance):
                verdict = "improved (consider --update)"
            print(f"  {name}: {counter} {actual:g} vs baseline "
                  f"{expected:g} [{verdict}]")

    for name, floors_by_counter in sorted(floors.items()):
        actual_by_counter = current.get(name)
        if actual_by_counter is None:
            failures.append(f"{name}: missing from {args.current}")
            continue
        for counter, floor in sorted(floors_by_counter.items()):
            actual = actual_by_counter.get(counter)
            if actual is None:
                failures.append(f"{name}: counter '{counter}' missing "
                                f"from {args.current}")
                continue
            checked += 1
            allowed = (floor * (1.0 - args.tolerance) - args.slack
                       - ABS_EPSILON)
            verdict = "ok"
            if actual < allowed:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {counter} {actual:g} fell below floor "
                    f"{floor:g} by more than {args.tolerance:.0%}")
            print(f"  {name}: {counter} {actual:g} vs floor "
                  f"{floor:g} [{verdict}]")

    if failures:
        print("check_bench_regression: FAILED")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"check_bench_regression: {checked} counter values within "
          f"{args.tolerance:.0%} of baseline")


if __name__ == "__main__":
    main()
