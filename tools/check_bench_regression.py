#!/usr/bin/env python3
"""Gate on algorithmic-work regressions in the greedy micro-benchmarks.

Compares a google-benchmark JSON file (BENCH_micro_algorithms.json,
produced by the `micro_algorithms_bench` ctest entry) against a committed
baseline of per-iteration work counters. The default counter,
`greedy.deltas`, counts marginal-gain recomputations: it is seeded and
workload-deterministic, so any increase beyond the tolerance means the
lazy selection path got algorithmically worse (e.g. cache invalidation
broke), not that the machine was noisy.

Exit codes: 0 ok, 1 regression or malformed input, 2 usage error.

Refreshing the baseline after an intentional change:
    python3 tools/check_bench_regression.py \
        --current build/bench/BENCH_micro_algorithms.json \
        --baseline bench/baselines/micro_algorithms_counters.json \
        --update
"""

import argparse
import json
import sys


def load_counters(path, counter):
    """Returns {benchmark name: counter value} from google-benchmark JSON."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_regression: cannot read {path}: {err}")
        sys.exit(1)
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(f"check_bench_regression: {path} has no 'benchmarks' array")
        sys.exit(1)
    counters = {}
    for entry in benchmarks:
        name = entry.get("name")
        if name is not None and counter in entry:
            counters[name] = float(entry[counter])
    return counters


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a benchmark work counter regresses past "
        "its committed baseline.")
    parser.add_argument("--current", required=True,
                        help="google-benchmark JSON produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON "
                        "({name: value} map, or --update to write it)")
    parser.add_argument("--counter", default="greedy.deltas",
                        help="counter field to compare "
                        "(default: greedy.deltas)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative increase (default: 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --current instead "
                        "of checking")
    args = parser.parse_args()

    current = load_counters(args.current, args.counter)
    if not current:
        print(f"check_bench_regression: no '{args.counter}' counters in "
              f"{args.current}")
        sys.exit(1)

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump({"counter": args.counter, "values": current}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"check_bench_regression: baseline {args.baseline} updated "
              f"with {len(current)} entries")
        return

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline_doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_regression: cannot read {args.baseline}: {err}")
        sys.exit(1)
    if baseline_doc.get("counter") != args.counter:
        print(f"check_bench_regression: baseline tracks "
              f"'{baseline_doc.get('counter')}', not '{args.counter}'")
        sys.exit(1)
    baseline = {k: float(v) for k, v in baseline_doc["values"].items()}

    failures = []
    for name, expected in sorted(baseline.items()):
        actual = current.get(name)
        if actual is None:
            failures.append(f"{name}: missing from {args.current}")
            continue
        allowed = expected * (1.0 + args.tolerance)
        verdict = "ok"
        if actual > allowed:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {args.counter} {actual:.0f} exceeds baseline "
                f"{expected:.0f} by more than {args.tolerance:.0%}")
        elif expected > 0 and actual < expected * (1.0 - args.tolerance):
            verdict = "improved (consider --update)"
        print(f"  {name}: {actual:.0f} vs baseline {expected:.0f} "
              f"[{verdict}]")

    if failures:
        print("check_bench_regression: FAILED")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"check_bench_regression: {len(baseline)} benchmarks within "
          f"{args.tolerance:.0%} of baseline")


if __name__ == "__main__":
    main()
